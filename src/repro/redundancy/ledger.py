"""The redundancy-debt ledger.

A CYRUS write that reaches ``t`` but not ``n`` stored shares is
*accepted* — the data is recoverable — but it carries less redundancy
than the user asked for, and nothing in the paper's lazy-repair story
fixes it until some future download happens to notice.  The ledger
makes that deficit a first-class, durable obligation: every degraded
write (and every corrupt share detected at decode time) appends a
**debt** record naming the chunk, the share indices that are missing
or suspect, and the providers that failed or lied.  The repair loop
(:mod:`repro.redundancy.repair`) drains open debts back to full
``n``-way redundancy and appends a **retire** record once the chunk is
whole again.

Durability model — the same torn-tail-tolerant JSONL idiom as
:class:`repro.recovery.journal.IntentJournal`: each record is one JSON
line appended with flush + fsync, so a crash can at worst tear the
final line, and the parser skips undecodable lines instead of failing.
Retired debts are compacted away through a temp file + ``os.replace``.

Record kinds, in lifecycle order::

    debt(chunk, missing, failed)   the deficit was observed; re-records
                                   for the same chunk merge (union of
                                   indices and suspects) under one id
    attempt(ok, detail)            the repair loop tried and failed;
                                   drives the per-entry backoff
    retire                         the chunk is back to n verified
                                   shares (or no longer exists)
"""

from __future__ import annotations

import json
import os
import threading
import uuid
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.errors import CyrusError

#: Record kinds, in lifecycle order.
DEBT = "debt"
ATTEMPT = "attempt"
RETIRE = "retire"

KINDS = (DEBT, ATTEMPT, RETIRE)

#: Metric names (mirrors the repro.obs constant style).
DEBT_RECORDED = "cyrus_debt_recorded_total"
DEBT_RETIRED = "cyrus_debt_retired_total"
DEBT_OPEN = "cyrus_debt_open"
REPAIR_SHARES = "cyrus_repair_shares_total"


class LedgerError(CyrusError):
    """A malformed record reached encode (never raised while parsing a
    ledger file — torn or alien lines are skipped there)."""


@dataclass(frozen=True)
class DebtEntry:
    """One open redundancy deficit.

    Attributes:
        debt_id: Stable id; re-records for the same chunk merge into it.
        chunk_id: The under-replicated object — a chunk id, or a
            metadata node id when ``kind == "meta"``.
        missing: Share indices not verifiably held on a healthy CSP at
            record time (advisory — the repair loop re-derives the true
            deficit from the chunk table before acting).
        failed_csps: Providers that failed the original writes or
            returned corrupt shares; the repair loop never counts a
            share held there as satisfying the redundancy target.
        created: Ledger-clock time of the first record.
        attempts: Failed repair tries so far (drives backoff).
        last_attempt: Time of the most recent failed try.
    """

    debt_id: str
    chunk_id: str
    missing: tuple[int, ...]
    failed_csps: tuple[str, ...]
    created: float = 0.0
    attempts: int = 0
    last_attempt: float = 0.0
    #: What the id names: "chunk" (a data chunk, the default — legacy
    #: ledger lines carry no kind field) or "meta" (a metadata node id
    #: whose scattered shares need re-dispersal).
    kind: str = "chunk"

    def next_due(self, base: float = 30.0, multiplier: float = 2.0,
                 max_delay: float = 3600.0) -> float:
        """When the repair loop may try this entry again.

        Exponential per-entry backoff: a debt that keeps failing (the
        fleet is still unhealthy) steps back so the budget is spent on
        repairable debts first.  A never-tried entry is due immediately.
        """
        if self.attempts <= 0:
            return self.created
        delay = min(max_delay, base * multiplier ** (self.attempts - 1))
        return self.last_attempt + delay


class DebtLedger:
    """Append-only JSONL debt ledger with atomic compaction.

    Mirrors the :class:`IntentJournal` open-per-write discipline: every
    append opens, writes one line, flushes, fsyncs and closes, so a
    crashed client generation and its successor can share the path
    without handle coordination.  The in-memory open-debt view is
    rebuilt from disk at construction and kept in step with every
    append, so reads never re-parse the file.
    """

    def __init__(self, path: str | Path, clock=None, fsync: bool = True,
                 compact_after: int = 256):
        self.path = Path(path)
        self.clock = clock
        self.fsync = fsync
        self.compact_after = max(1, compact_after)
        self._lock = threading.RLock()
        self._open: dict[str, DebtEntry] = {}  # debt_id -> entry
        self._by_chunk: dict[str, str] = {}  # chunk_id -> open debt_id
        self._seq = 0
        self._retires_since_compact = 0
        self._load()

    # -- writing ----------------------------------------------------------

    def _now(self) -> float:
        return self.clock.now() if self.clock is not None else 0.0

    def _append(self, doc: dict) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            blob = (json.dumps(doc, sort_keys=True,
                               separators=(",", ":")) + "\n").encode("utf-8")
        except (TypeError, ValueError) as exc:
            raise LedgerError(f"unencodable ledger record: {exc}") from exc
        with open(self.path, "ab") as handle:
            # a crash can leave a torn final line with no newline; start
            # a fresh line so the new record doesn't glue onto the wreck
            if handle.tell() > 0:
                with open(self.path, "rb") as probe:
                    probe.seek(-1, os.SEEK_END)
                    if probe.read(1) != b"\n":
                        handle.write(b"\n")
            handle.write(blob)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())

    @staticmethod
    def _chunk_key(chunk_id: str, kind: str) -> str:
        """Open-debt merge key: chunk and meta ids live in one 40-hex
        namespace, so the kind disambiguates (a legacy plain chunk id
        keys as ``chunk:<id>``)."""
        return f"{kind}:{chunk_id}"

    def record(
        self,
        chunk_id: str,
        missing: tuple[int, ...] | list[int],
        failed_csps: tuple[str, ...] | list[str] = (),
        kind: str = "chunk",
    ) -> str:
        """Record (or merge into) the open debt for one object.

        Returns the debt id.  An object with an open debt gets its
        entry *merged* — union of missing indices and suspect CSPs — so
        a degraded write followed by a corrupt-read detection produces
        one obligation, not two.  ``kind`` distinguishes data chunks
        (the default) from metadata nodes (``"meta"``).
        """
        with self._lock:
            existing_id = self._by_chunk.get(self._chunk_key(chunk_id, kind))
            now = self._now()
            if existing_id is not None:
                entry = self._open[existing_id]
                merged = replace(
                    entry,
                    missing=tuple(sorted(set(entry.missing) | set(missing))),
                    failed_csps=tuple(sorted(
                        set(entry.failed_csps) | set(failed_csps)
                    )),
                )
                if merged == entry:
                    return existing_id  # nothing new to persist
                entry = merged
            else:
                entry = DebtEntry(
                    debt_id=uuid.uuid4().hex[:16],
                    chunk_id=chunk_id,
                    missing=tuple(sorted(set(missing))),
                    failed_csps=tuple(sorted(set(failed_csps))),
                    created=now,
                    kind=kind,
                )
            doc = {
                "kind": DEBT,
                "id": entry.debt_id,
                "seq": self._seq + 1,
                "time": now,
                "chunk": entry.chunk_id,
                "missing": list(entry.missing),
                "failed": list(entry.failed_csps),
            }
            # chunk-debt lines stay byte-identical to the pre-meta
            # format; only metadata debts carry the extra field
            if entry.kind != "chunk":
                doc["obj"] = entry.kind
            self._seq += 1
            self._append(doc)
            self._open[entry.debt_id] = entry
            self._by_chunk[self._chunk_key(chunk_id, entry.kind)] = entry.debt_id
            return entry.debt_id

    def note_attempt(self, debt_id: str, ok: bool = False,
                     detail: str = "") -> None:
        """Record one failed (or partial) repair try; bumps the backoff."""
        with self._lock:
            entry = self._open.get(debt_id)
            if entry is None:
                return
            now = self._now()
            self._seq += 1
            self._append({
                "kind": ATTEMPT, "id": debt_id, "seq": self._seq,
                "time": now, "ok": bool(ok), "detail": detail,
            })
            self._open[debt_id] = replace(
                entry, attempts=entry.attempts + 1, last_attempt=now,
            )

    def retire(self, debt_id: str) -> None:
        """Close a debt; periodically compacts the file."""
        with self._lock:
            entry = self._open.pop(debt_id, None)
            if entry is None:
                return
            self._by_chunk.pop(self._chunk_key(entry.chunk_id, entry.kind), None)
            self._seq += 1
            self._append({
                "kind": RETIRE, "id": debt_id, "seq": self._seq,
                "time": self._now(),
            })
            self._retires_since_compact += 1
            if self._retires_since_compact >= self.compact_after:
                self.compact()

    # -- reading ----------------------------------------------------------

    def open_debts(self) -> list[DebtEntry]:
        """All open entries, oldest first (repair drains in this order)."""
        with self._lock:
            return sorted(self._open.values(),
                          key=lambda e: (e.created, e.debt_id))

    def debt_for(self, chunk_id: str, kind: str = "chunk") -> DebtEntry | None:
        """The open entry for one chunk (or metadata node), if any."""
        with self._lock:
            debt_id = self._by_chunk.get(self._chunk_key(chunk_id, kind))
            return self._open.get(debt_id) if debt_id is not None else None

    def __len__(self) -> int:
        with self._lock:
            return len(self._open)

    def _parse(self) -> tuple[list[dict], int]:
        """All decodable records in seq order plus skipped-line count.

        A torn final line (the one partial write a crash can produce)
        and any corrupt interior line are skipped, not fatal: the ledger
        must never be the component that blocks repair.
        """
        if not self.path.exists():
            return [], 0
        records: list[dict] = []
        skipped = 0
        for line in self.path.read_bytes().split(b"\n"):
            if not line.strip():
                continue
            try:
                doc = json.loads(line.decode("utf-8"))
                if (not isinstance(doc, dict) or doc.get("kind") not in KINDS
                        or "id" not in doc):
                    skipped += 1
                    continue
                records.append(doc)
            except (UnicodeDecodeError, ValueError):
                skipped += 1
        records.sort(key=lambda d: int(d.get("seq", 0)))
        return records, skipped

    def _load(self) -> None:
        records, _skipped = self._parse()
        open_entries: dict[str, DebtEntry] = {}
        by_chunk: dict[str, str] = {}
        max_seq = 0
        for doc in records:
            try:
                debt_id = str(doc["id"])
                kind = str(doc["kind"])
                seq = int(doc.get("seq", 0))
                time = float(doc.get("time", 0.0))
            except (TypeError, ValueError):
                continue
            max_seq = max(max_seq, seq)
            if kind == DEBT:
                try:
                    chunk_id = str(doc["chunk"])
                    missing = tuple(sorted(int(i) for i in doc["missing"]))
                    failed = tuple(sorted(str(c) for c in doc.get("failed", ())))
                    obj_kind = str(doc.get("obj", "chunk"))
                except (KeyError, TypeError, ValueError):
                    continue
                prior = open_entries.get(debt_id)
                if prior is None:
                    open_entries[debt_id] = DebtEntry(
                        debt_id=debt_id, chunk_id=chunk_id,
                        missing=missing, failed_csps=failed, created=time,
                        kind=obj_kind,
                    )
                else:
                    open_entries[debt_id] = replace(
                        prior,
                        missing=tuple(sorted(set(prior.missing) | set(missing))),
                        failed_csps=tuple(sorted(
                            set(prior.failed_csps) | set(failed)
                        )),
                    )
                by_chunk[self._chunk_key(chunk_id, obj_kind)] = debt_id
            elif kind == ATTEMPT:
                prior = open_entries.get(debt_id)
                if prior is not None:
                    open_entries[debt_id] = replace(
                        prior, attempts=prior.attempts + 1, last_attempt=time,
                    )
            elif kind == RETIRE:
                prior = open_entries.pop(debt_id, None)
                if prior is not None:
                    by_chunk.pop(self._chunk_key(prior.chunk_id, prior.kind),
                                 None)
        with self._lock:
            self._open = open_entries
            self._by_chunk = by_chunk
            self._seq = max_seq

    # -- compaction -------------------------------------------------------

    def compact(self) -> int:
        """Drop records of retired debts; returns lines removed.

        Open debts are rewritten as one merged ``debt`` record plus one
        synthetic ``attempt`` per recorded try, preserving the backoff
        state exactly.  Atomic: survivors go to a temp file that
        replaces the ledger in one rename.
        """
        with self._lock:
            records, skipped = self._parse()
            keep = {e.debt_id for e in self._open.values()}
            removed = sum(1 for d in records
                          if str(d.get("id")) not in keep) + skipped
            if removed == 0:
                self._retires_since_compact = 0
                return 0
            tmp = self.path.with_name(self.path.name + ".tmp")
            with open(tmp, "wb") as handle:
                seq = 0
                for entry in sorted(self._open.values(),
                                    key=lambda e: (e.created, e.debt_id)):
                    seq += 1
                    doc = {
                        "kind": DEBT, "id": entry.debt_id, "seq": seq,
                        "time": entry.created, "chunk": entry.chunk_id,
                        "missing": list(entry.missing),
                        "failed": list(entry.failed_csps),
                    }
                    if entry.kind != "chunk":
                        doc["obj"] = entry.kind
                    handle.write((json.dumps(
                        doc, sort_keys=True, separators=(",", ":")) + "\n")
                        .encode("utf-8"))
                    for _ in range(entry.attempts):
                        seq += 1
                        handle.write((json.dumps({
                            "kind": ATTEMPT, "id": entry.debt_id, "seq": seq,
                            "time": entry.last_attempt, "ok": False,
                            "detail": "(compacted)",
                        }, sort_keys=True, separators=(",", ":")) + "\n")
                            .encode("utf-8"))
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())
            os.replace(tmp, self.path)
            self._seq = seq
            self._retires_since_compact = 0
            return removed
