"""Re-dispersal repair: drain the debt ledger back to full redundancy.

A debt names a chunk holding fewer than ``n`` verifiable shares — or,
for ``kind == "meta"`` entries, a metadata node with missing, stale or
corrupt scattered shares.  The repair loop turns each one back into a
fully dispersed object using only machinery that already exists for
migration:

1. **Re-derive the deficit** from the global chunk table — the ledger
   entry's ``missing`` list is advisory; the placements adopted by
   recovery replay or scrub since the debt was recorded are the truth.
   A share only counts toward redundancy if its CSP is ACTIVE, its
   breaker is not open, and the CSP is not one of the entry's suspects
   (a provider that failed the original write or returned a corrupt
   share never satisfies the target, even if the table still lists it).
2. **Regenerate** the missing indices from any ``t`` healthy shares via
   the keyed codec (``join_verified`` against the chunk's content hash,
   then ``split_indices`` — the same per-index regeneration scrub uses).
3. **Re-disperse** onto health-filtered replacement CSPs, journaling the
   repair as a ``migrate`` intent first, so a crash between upload and
   debt retirement replays like any crashed migration: recovery adopts
   the landed shares, and the next repair tick finds the chunk whole
   and retires the debt with zero transfers — the idempotency the
   kill-point tests sweep.
4. **Retire** the debt; a failed attempt instead records an ``attempt``
   so the entry backs off exponentially while the fleet is unhealthy.

Metadata debts follow the same shape with fixed slots instead of
replacement CSPs: the node plaintext is recovered from the local tree
(or a verified quorum fetch — any t healthy shares), the damaged slots
are re-framed in fresh authenticated envelopes, and the re-uploads are
journaled as a ``meta-repair`` intent.  Slot names are fixed per node
and index, so a kill point between upload and retirement replays as an
idempotent overwrite — never a duplicate share.

The ``budget_shares`` budget counts share *transfers* (downloads +
uploads), the same unit the scrub budget uses, so a
:class:`repro.core.daemon.SyncDaemon` tick can bound both with one
knob's worth of provider traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cloud import CSPStatus
from repro.core.naming import chunk_share_object_name
from repro.core.transfer import OpKind, TransferOp
from repro.core.uploader import get_sharer
from repro.erasure import Share
from repro.errors import CyrusError
from repro.obs import span_if
from repro.redundancy.ledger import (
    DEBT_OPEN,
    DEBT_RETIRED,
    DebtEntry,
    DebtLedger,
    REPAIR_SHARES,
)
from repro.util.hashing import sha1_hex


@dataclass
class RepairReport:
    """What one repair slice saw and fixed."""

    debts_seen: int = 0
    debts_retired: int = 0
    debts_deferred: int = 0  # backoff not yet elapsed
    debts_failed: int = 0  # attempted, still open (backoff bumped)
    debts_open: int = 0  # ledger size after the slice
    shares_rebuilt: int = 0
    transfers_used: int = 0
    budget_exhausted: bool = False
    unrecoverable_chunks: tuple[str, ...] = ()

    @property
    def drained(self) -> bool:
        """No open debt remains after this slice."""
        return self.debts_open == 0


def run_repair(
    client,
    ledger: DebtLedger | None = None,
    budget_shares: int | None = None,
    journal=None,
    backoff_base: float = 30.0,
    backoff_multiplier: float = 2.0,
    backoff_max: float = 3600.0,
) -> RepairReport:
    """One re-dispersal pass (or budget-limited slice) over the ledger.

    ``budget_shares`` caps share downloads + uploads (None = unbounded);
    entries still inside their backoff window are skipped without cost.
    """
    if ledger is None:
        ledger = getattr(client, "debt_ledger", None)
    report = RepairReport()
    if ledger is None:
        return report
    if journal is None:
        journal = getattr(client, "journal", None)
    obs = client.obs
    budget = [budget_shares if budget_shares is not None else None]
    unrecoverable: list[str] = []
    with span_if(obs, "repair", budget=budget_shares or 0):
        now = client.engine.clock.now()
        for entry in ledger.open_debts():
            report.debts_seen += 1
            if entry.next_due(backoff_base, backoff_multiplier,
                              backoff_max) > now:
                report.debts_deferred += 1
                continue
            if budget[0] is not None and budget[0] <= 0:
                report.budget_exhausted = True
                break
            outcome = _repair_entry(client, ledger, entry, journal,
                                    budget, report, unrecoverable)
            if outcome == "retired":
                report.debts_retired += 1
                obs.metrics.inc(DEBT_RETIRED)
            elif outcome == "failed":
                report.debts_failed += 1
            elif outcome == "budget":
                report.budget_exhausted = True
                break
        report.unrecoverable_chunks = tuple(unrecoverable)
        report.debts_open = len(ledger)
        obs.metrics.set_gauge(DEBT_OPEN, report.debts_open)
        obs.metrics.inc(REPAIR_SHARES, report.shares_rebuilt)
    return report


def _usable(client, csp_id: str, suspects: set[str]) -> bool:
    """May a share at this CSP count toward the redundancy target?"""
    if csp_id in suspects:
        return False
    try:
        status = client.cloud.status_of(csp_id)
    except KeyError:
        return False
    return status is CSPStatus.ACTIVE and client.health.is_live(csp_id)


def _repair_entry(client, ledger: DebtLedger, entry: DebtEntry, journal,
                  budget, report: RepairReport,
                  unrecoverable: list[str]) -> str:
    """Repair one debt; returns retired | failed | budget."""
    if entry.kind == "meta":
        return _repair_meta_entry(client, ledger, entry, journal,
                                  budget, report, unrecoverable)
    location = client.chunk_table.get(entry.chunk_id)
    if location is None:
        # the chunk was garbage-collected (or never published); the
        # deficit is moot
        ledger.retire(entry.debt_id)
        return "retired"
    suspects = set(entry.failed_csps)
    healthy: dict[int, str] = {}  # index -> one usable csp holding it
    for index, csp_id in sorted(location.placements):
        if index not in healthy and _usable(client, csp_id, suspects):
            healthy[index] = csp_id
    deficit = [i for i in range(location.n) if i not in healthy]
    if not deficit:
        # already whole — a prior repair landed and crashed before
        # retirement, or scrub/recovery fixed it first.  Zero transfers.
        ledger.retire(entry.debt_id)
        return "retired"
    if len(healthy) < location.t:
        # cannot reconstruct yet; wait for providers to come back
        ledger.note_attempt(
            entry.debt_id,
            detail=f"only {len(healthy)} healthy shares, need t={location.t}",
        )
        return "failed"
    # plan replacement targets for every missing index
    holding = set(healthy.values())
    dead = {
        c for c in client.cloud.writable_csps()
        if not client.health.is_live(c)
    }
    moves: list[tuple[int, str]] = []
    for index in deficit:
        target = client.cloud.replacement_csp(
            entry.chunk_id, holding=holding, exclude=suspects | dead,
        )
        if target is None:
            # every non-suspect is holding a share or down.  A suspect
            # that is healthy *now* may receive a freshly regenerated
            # share: the distrust covers bytes it already holds (failed
            # or corrupt), not bytes we are about to write — without
            # this, a (t, n) = (t, #CSPs) deployment could never retire
            # a degraded-write debt, because the missing share's only
            # possible home is the provider that failed the write.
            target = client.cloud.replacement_csp(
                entry.chunk_id, holding=holding, exclude=dead,
            )
        if target is None:
            break  # no live CSP left for further indices
        moves.append((index, target))
        holding.add(target)
    if not moves:
        ledger.note_attempt(
            entry.debt_id,
            detail=f"no replacement CSP for indices {deficit}",
        )
        return "failed"
    # budget: t downloads to reconstruct + one upload per regenerated share
    fetch = sorted(healthy.items())[:location.t]
    cost = len(fetch) + len(moves)
    if budget[0] is not None and budget[0] < cost:
        return "budget"
    if budget[0] is not None:
        budget[0] -= cost
    report.transfers_used += cost
    share_size = max(1, -(-location.size // location.t))
    results = client.engine.execute([
        TransferOp(kind=OpKind.GET, csp_id=csp_id,
                   name=chunk_share_object_name(index, entry.chunk_id),
                   size=share_size, chunk_id=entry.chunk_id)
        for index, csp_id in fetch
    ])
    shares = [
        Share(index=index, data=result.data, t=location.t, n=location.n,
              chunk_size=location.size)
        for (index, _csp), result in zip(fetch, results)
        if result.ok
    ]
    sharer = get_sharer(client.config.key, location.t, location.n)
    try:
        plaintext = sharer.join_verified(
            shares, verify=lambda pt: sha1_hex(pt) == entry.chunk_id,
        )
    except CyrusError:
        unrecoverable.append(entry.chunk_id)
        ledger.note_attempt(
            entry.debt_id,
            detail=f"no verifying t-subset among {len(shares)} fetched shares",
        )
        return "failed"
    intent_id = None
    if journal is not None:
        intent_id = journal.begin("migrate", chunk=entry.chunk_id, moves=[
            [index, csp_id, chunk_share_object_name(index, entry.chunk_id)]
            for index, csp_id in moves
        ])
    put_results = client.engine.execute([
        TransferOp(kind=OpKind.PUT, csp_id=csp_id,
                   name=chunk_share_object_name(index, entry.chunk_id),
                   data=sharer.split_indices(plaintext, [index])[0].data,
                   chunk_id=entry.chunk_id)
        for index, csp_id in moves
    ])
    landed = 0
    for (index, csp_id), result in zip(moves, put_results):
        if not result.ok:
            continue
        if (index, csp_id) not in location.placements:
            client.chunk_table.add_placement(entry.chunk_id, index, csp_id)
        if intent_id is not None:
            journal.record(
                intent_id, "share-uploaded", chunk=entry.chunk_id,
                index=index, csp=csp_id,
                object=chunk_share_object_name(index, entry.chunk_id),
            )
        landed += 1
        report.shares_rebuilt += 1
    if intent_id is not None:
        journal.commit(intent_id)
    if landed == len(deficit):
        ledger.retire(entry.debt_id)
        return "retired"
    ledger.note_attempt(
        entry.debt_id,
        detail=f"re-dispersed {landed}/{len(deficit)} missing shares",
    )
    return "failed"


def _repair_meta_entry(client, ledger: DebtLedger, entry: DebtEntry, journal,
                       budget, report: RepairReport,
                       unrecoverable: list[str]) -> str:
    """Re-disperse one metadata node's damaged slots.

    Unlike chunk repair there is no replacement placement: metadata
    slot i lives at provider i forever, so healing means overwriting
    the fixed object name with a freshly framed share — idempotent
    under any kill point, and incapable of creating duplicates.
    """
    from repro.metadata.codec import metadata_share_name

    node_id = entry.chunk_id
    store = client.store
    suspects = set(entry.failed_csps)
    # census the fixed slots: which hold an object on a reachable provider
    reachable: set[int] = set()
    present: set[int] = set()
    for index, provider in enumerate(store.providers):
        name = metadata_share_name(node_id, index)
        try:
            infos = provider.list(prefix=name)
        except CyrusError:
            continue  # slot down; cannot verify or write there now
        reachable.add(index)
        if any(info.name == name for info in infos):
            present.add(index)
    try:
        node = client.tree.get(node_id)
    except CyrusError:
        node = None
    fetch_cost = 0
    if node is None:
        if len(reachable) == store.m and not present:
            # gone from every (reachable = all) slot and unknown to the
            # tree: the node was pruned; the deficit is moot
            ledger.retire(entry.debt_id)
            return "retired"
        # reconstruct from any verified t-quorum of the surviving shares
        cost = len(present)
        if budget[0] is not None and budget[0] < cost:
            return "budget"
        try:
            node = store.fetch(node_id)
        except CyrusError as exc:
            unrecoverable.append(node_id)
            ledger.note_attempt(
                entry.debt_id,
                detail=f"no verified quorum among {len(present)} shares: {exc}",
            )
            return "failed"
        fetch_cost = cost
    # a slot needs re-dispersal when its object is missing, was flagged
    # in the debt (stale or corrupt at detection time), or sits on a
    # suspect provider — fresh bytes overwrite whatever the liar holds
    advisory = set(entry.missing)
    need: list[int] = []
    unwritable_bad = 0
    for index, provider in enumerate(store.providers):
        bad = (index not in present or index in advisory
               or provider.csp_id in suspects)
        if not bad:
            continue
        if index in reachable:
            need.append(index)
        else:
            unwritable_bad += 1
    if not need and unwritable_bad == 0:
        # healed elsewhere (another client's repair or republish)
        ledger.retire(entry.debt_id)
        return "retired"
    cost = fetch_cost + len(need)
    if budget[0] is not None and budget[0] < cost:
        return "budget"
    if budget[0] is not None:
        budget[0] -= cost
    report.transfers_used += cost
    frames = {
        index: (prov.csp_id, name, blob)
        for prov, name, blob, index in store.frames_for(node)
    }
    intent_id = None
    if journal is not None:
        from repro.metadata.codec import encode_node

        intent_id = journal.begin(
            "meta-repair", node_id=node_id,
            node=encode_node(node).decode("utf-8"),
            slots=[[index, frames[index][0], frames[index][1]]
                   for index in need],
        )
    results = client.engine.execute([
        TransferOp(kind=OpKind.PUT_META, csp_id=frames[index][0],
                   name=frames[index][1], data=frames[index][2])
        for index in need
    ])
    landed = 0
    for index, result in zip(need, results):
        if not result.ok:
            continue
        if intent_id is not None:
            journal.record(intent_id, "share-uploaded", index=index,
                           csp=frames[index][0], object=frames[index][1])
        landed += 1
        report.shares_rebuilt += 1
    if intent_id is not None:
        journal.commit(intent_id)
    if landed == len(need) and unwritable_bad == 0:
        ledger.retire(entry.debt_id)
        return "retired"
    ledger.note_attempt(
        entry.debt_id,
        detail=(f"re-dispersed {landed}/{len(need)} metadata shares "
                f"({unwritable_bad} slot(s) unreachable)"),
    )
    return "failed"
