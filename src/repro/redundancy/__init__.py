"""Self-healing redundancy: the debt ledger and the repair loop.

CYRUS accepts a write once ``t`` of ``n`` shares land — recoverable but
under-dispersed.  This package makes the gap explicit and self-healing:
:class:`DebtLedger` durably records every redundancy deficit (degraded
writes, corrupt shares detected at decode time), and :func:`run_repair`
drains it back to ``n`` verified shares using the keyed codec's
per-index regeneration and journaled migration.
"""

from repro.redundancy.ledger import (
    DEBT_OPEN,
    DEBT_RECORDED,
    DEBT_RETIRED,
    DebtEntry,
    DebtLedger,
    LedgerError,
    REPAIR_SHARES,
)
from repro.redundancy.repair import RepairReport, run_repair

__all__ = [
    "DEBT_OPEN",
    "DEBT_RECORDED",
    "DEBT_RETIRED",
    "DebtEntry",
    "DebtLedger",
    "LedgerError",
    "REPAIR_SHARES",
    "RepairReport",
    "run_repair",
]
