"""Simulated commercial CSP.

Combines an in-memory object store with the behaviours that matter to
CYRUS: a network link (consumed by the transfer engine), an account
quota, token-based authentication, and an outage schedule.  All failure
behaviour is surfaced through the same exceptions a real connector would
raise, so the client code above cannot tell the difference.
"""

from __future__ import annotations

import bisect
import math
import random
from typing import Sequence

from repro.csp.account import AuthToken, Credentials, issue_token
from repro.csp.base import BytesLike, CloudProvider, ObjectInfo
from repro.csp.memory import InMemoryCSP
from repro.errors import CSPAuthError, CSPQuotaExceededError, CSPUnavailableError
from repro.netsim.link import Link
from repro.util.clock import Clock, SimClock


class AvailabilitySchedule:
    """Outage intervals for one provider.

    ``intervals`` are non-overlapping ``(start, end)`` pairs during which
    the provider is down.  :meth:`from_annual_downtime` draws outage
    windows matching a given hours-per-year downtime figure — the model
    behind the paper's Figure 13, which uses real monitoring data showing
    1.37 to 18.53 hours of downtime per year [CloudSquare].
    """

    def __init__(self, intervals: Sequence[tuple[float, float]] = ()):
        cleaned = sorted((float(a), float(b)) for a, b in intervals)
        for (a1, b1), (a2, _) in zip(cleaned, cleaned[1:]):
            if a2 < b1:
                raise ValueError("outage intervals must not overlap")
        for a, b in cleaned:
            if b <= a:
                raise ValueError(f"empty outage interval ({a}, {b})")
        self._starts = [a for a, _ in cleaned]
        self._ends = [b for _, b in cleaned]

    @classmethod
    def always_up(cls) -> "AvailabilitySchedule":
        return cls(())

    @classmethod
    def from_annual_downtime(
        cls,
        hours_per_year: float,
        horizon_s: float,
        mean_outage_s: float = 3600.0,
        seed: int = 0,
    ) -> "AvailabilitySchedule":
        """Random outage windows totalling the right fraction of time.

        Outage count over the horizon is scaled from the annual figure;
        each outage has an exponential duration with the given mean.
        """
        if hours_per_year < 0:
            raise ValueError("downtime must be non-negative")
        year_s = 365.0 * 24 * 3600
        target_down = hours_per_year * 3600.0 * (horizon_s / year_s)
        rng = random.Random(seed)
        intervals: list[tuple[float, float]] = []
        total = 0.0
        guard = 0
        while total < target_down and guard < 10000:
            guard += 1
            duration = rng.expovariate(1.0 / mean_outage_s)
            duration = min(duration, target_down - total) or target_down - total
            start = rng.uniform(0, max(horizon_s - duration, 1.0))
            candidate = (start, start + duration)
            if any(a < candidate[1] and candidate[0] < b
                   for a, b in intervals):
                continue  # overlap; redraw
            intervals.append(candidate)
            total += duration
        return cls(intervals)

    def is_up(self, t: float) -> bool:
        """Whether the provider is reachable at time ``t``."""
        i = bisect.bisect_right(self._starts, t) - 1
        return not (i >= 0 and t < self._ends[i])

    def downtime(self, t0: float, t1: float) -> float:
        """Total seconds of outage inside [t0, t1]."""
        total = 0.0
        for a, b in zip(self._starts, self._ends):
            total += max(0.0, min(b, t1) - max(a, t0))
        return total

    def next_up(self, t: float) -> float:
        """Earliest time >= t at which the provider is reachable."""
        i = bisect.bisect_right(self._starts, t) - 1
        if i >= 0 and t < self._ends[i]:
            return self._ends[i]
        return t


class SimulatedCSP(CloudProvider):
    """A provider with link, quota, auth, outages, and vendor quirks.

    Args:
        csp_id: Provider identifier.
        link: Network path from the client (consumed by the transfer
            engine; the provider itself only exposes it).
        clock: Source of "now" for availability and token expiry; a
            fresh :class:`SimClock` by default.
        quota_bytes: Account capacity; uploads that would exceed it
            raise :class:`CSPQuotaExceededError`.
        availability: Outage schedule (always up by default).
        overwrite: Vendor file-handling style (see
            :class:`repro.csp.memory.InMemoryCSP`).
        require_auth: When True, every data operation demands a valid
            token from :meth:`authenticate` first.
        token_ttl: Token lifetime in seconds.
    """

    def __init__(
        self,
        csp_id: str,
        link: Link,
        clock: Clock | None = None,
        quota_bytes: float = math.inf,
        availability: AvailabilitySchedule | None = None,
        overwrite: bool = True,
        require_auth: bool = False,
        token_ttl: float = math.inf,
    ):
        super().__init__(csp_id)
        self.link = link
        self.clock = clock if clock is not None else SimClock()
        self.quota_bytes = quota_bytes
        self.availability = availability or AvailabilitySchedule.always_up()
        self.require_auth = require_auth
        self.token_ttl = token_ttl
        self._store = InMemoryCSP(csp_id, overwrite=overwrite)
        self._session: AuthToken | None = None

    # -- bookkeeping ----------------------------------------------------

    @property
    def stored_bytes(self) -> int:
        """Bytes currently stored (counts against the quota)."""
        return self._store.stored_bytes

    @property
    def object_count(self) -> int:
        return self._store.object_count

    def is_up(self, t: float | None = None) -> bool:
        """Reachability at time ``t`` (defaults to the provider clock)."""
        return self.availability.is_up(self.clock.now() if t is None else t)

    # -- guards ----------------------------------------------------------

    def _check_up(self) -> None:
        now = self.clock.now()
        if not self.availability.is_up(now):
            raise CSPUnavailableError(
                f"{self.csp_id} is down at t={now:.1f}", csp_id=self.csp_id
            )

    def _check_auth(self) -> None:
        if not self.require_auth:
            return
        now = self.clock.now()
        if self._session is None or not self._session.valid_at(now):
            raise CSPAuthError(
                f"no valid session with {self.csp_id}", csp_id=self.csp_id
            )

    # -- the five primitives ---------------------------------------------

    def authenticate(self, credentials: Credentials) -> AuthToken:
        self._check_up()
        token = issue_token(
            credentials,
            provider_secret=self.csp_id,
            now=self.clock.now(),
            ttl=self.token_ttl,
        )
        self._session = token
        return token

    def list(self, *, prefix: str = "") -> list[ObjectInfo]:
        """List stored objects whose names start with ``prefix``."""
        self._check_up()
        self._check_auth()
        return self._store.list(prefix=prefix)

    def upload(self, name: str, data: BytesLike) -> None:
        """Store ``data`` (any bytes-like object) under ``name``.

        The backing store's retention copy is the single
        materialisation; quota accounting uses the buffer length.
        """
        self._check_up()
        self._check_auth()
        replaced = 0
        if self._store.overwrite:
            replaced = self._store.object_size(name) or 0
        if self._store.stored_bytes - replaced + len(data) > self.quota_bytes:
            raise CSPQuotaExceededError(
                f"{self.csp_id} quota exceeded "
                f"({self._store.stored_bytes + len(data)} > {self.quota_bytes})",
                csp_id=self.csp_id,
            )
        self._store.upload(name, data)

    def download(self, name: str) -> bytes:
        self._check_up()
        self._check_auth()
        return self._store.download(name)

    def delete(self, name: str) -> None:
        self._check_up()
        self._check_auth()
        self._store.delete(name)
