"""Resilient provider layer: deadlines, backoff, circuit breakers, health.

The paper's Section 5.5 treats CSP failure as a first-class event:
autonomous providers go down, come back, throttle, and expire tokens on
their own schedules, and the client must keep serving through it all.
This module gives every :class:`repro.csp.base.CloudProvider` a uniform
resilience envelope:

* :class:`RetryPolicy` — exponential backoff with deterministic jitter
  over the transient/permanent classification in :mod:`repro.errors`;
* :class:`CircuitBreaker` — per-CSP closed → open → half-open breaker so
  a dead provider stops eating retry budget after a few failures;
* :class:`HealthRegistry` — the shared per-CSP health view (breaker
  states, failure counts, last errors) that the transfer engine, the
  upload/download pipelines and the download selector all consult;
* :class:`ResilientProvider` — a wrapper applying a per-operation
  deadline, the retry policy and the breaker to any provider.

Everything takes a :class:`repro.util.clock.Clock`, so breaker timeouts
and backoff sleeps are exact on a :class:`SimClock` and real against
wall-clock providers.
"""

from __future__ import annotations

import enum
import random
import threading
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.csp.base import BytesLike, CloudProvider, ObjectInfo
from repro.errors import (
    CircuitOpenError,
    CSPError,
    CSPTimeoutError,
    CSPUnavailableError,
    is_retryable,
)
from repro.util.clock import Clock, WallClock, sleep_on


# ---------------------------------------------------------------------------
# retry policy


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter.

    ``max_attempts`` bounds tries *per provider per operation*; once a
    provider exhausts them the caller fails over to an alternate.
    Jitter is derived from ``(seed, attempt)`` rather than a shared RNG
    stream so that two identically-seeded runs produce identical delay
    schedules regardless of interleaving — a requirement for
    reproducible chaos tests.
    """

    max_attempts: int = 3
    base_delay: float = 0.02
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based, deterministic)."""
        if attempt < 1:
            return 0.0
        raw = min(self.max_delay,
                  self.base_delay * self.multiplier ** (attempt - 1))
        if self.jitter == 0.0 or raw == 0.0:
            return raw
        u = random.Random(f"{self.seed}:{attempt}").random()
        return raw * (1.0 + self.jitter * (2.0 * u - 1.0))

    def should_retry(self, exc: BaseException, attempt: int) -> bool:
        """Retry the *same* provider? (transient error, budget left)."""
        return attempt < self.max_attempts and is_retryable(exc)


# ---------------------------------------------------------------------------
# circuit breaker


class BreakerState(enum.Enum):
    """The classic three-state breaker lifecycle."""

    CLOSED = "closed"  # normal operation
    OPEN = "open"  # failing fast; no calls dispatched
    HALF_OPEN = "half_open"  # probation: one probe allowed through


class CircuitBreaker:
    """Per-CSP circuit breaker.

    ``failure_threshold`` consecutive failures open the circuit; while
    open, :meth:`allow` returns False (callers fail fast without
    touching the provider).  After ``reset_timeout`` seconds the breaker
    half-opens and :meth:`allow` admits exactly one probe; a recorded
    success closes the circuit, a failure re-opens it for another full
    timeout.
    """

    def __init__(
        self,
        clock: Clock | None = None,
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout < 0:
            raise ValueError("reset_timeout must be non-negative")
        self.clock = clock if clock is not None else WallClock()
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self._probe_inflight = False
        self.opened_count = 0  # lifetime open transitions (observability)
        # state transitions are read-modify-write; pool workers hit one
        # breaker concurrently, and the HALF_OPEN single-probe admission
        # in allow() must be atomic (reentrant: state refresh nests)
        self._lock = threading.RLock()

    @property
    def state(self) -> BreakerState:
        """Current state, refreshing the OPEN → HALF_OPEN timeout edge."""
        with self._lock:
            if (self._state is BreakerState.OPEN
                    and self.clock.now()
                    >= self._opened_at + self.reset_timeout):
                self._state = BreakerState.HALF_OPEN
                self._probe_inflight = False
            return self._state

    @property
    def consecutive_failures(self) -> int:
        return self._consecutive_failures

    def allow(self) -> bool:
        """Whether a call may be dispatched right now.

        In HALF_OPEN, only the first caller gets True (the probe); the
        rest fail fast until the probe's outcome is recorded.
        """
        with self._lock:
            state = self.state
            if state is BreakerState.CLOSED:
                return True
            if state is BreakerState.HALF_OPEN and not self._probe_inflight:
                self._probe_inflight = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            # an OPEN circuit only closes through the HALF_OPEN probe: a
            # success arriving while OPEN can only come from a deliberate
            # force-dispatched last-resort op, and one good object does
            # not end a quarantine (the .state read refreshes the
            # OPEN -> HALF_OPEN timeout edge first)
            if self.state is not BreakerState.OPEN:
                self._probe_inflight = False
                self._state = BreakerState.CLOSED
                self._opened_at = None

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            state = self.state
            if state is BreakerState.HALF_OPEN:
                self._trip()  # failed probe: back to a full timeout
            elif (state is BreakerState.CLOSED
                  and self._consecutive_failures >= self.failure_threshold):
                self._trip()

    def _trip(self) -> None:
        with self._lock:
            self._state = BreakerState.OPEN
            self._opened_at = self.clock.now()
            self._probe_inflight = False
            self.opened_count += 1

    def reset(self) -> None:
        """Force-close the circuit regardless of its state.

        For callers that have *verified* recovery out of band (a probe
        listing against the failed provider succeeded); ordinary
        successes never close an OPEN circuit — see
        :meth:`record_success`.
        """
        with self._lock:
            self._consecutive_failures = 0
            self._probe_inflight = False
            self._state = BreakerState.CLOSED
            self._opened_at = None

    def trip(self) -> None:
        """Force the circuit open regardless of the failure count.

        Used for quarantine decisions made *outside* the availability
        path — e.g. a provider that answers promptly but returns corrupt
        shares never accumulates consecutive availability failures, yet
        must be embargoed just the same.
        """
        self._trip()


# ---------------------------------------------------------------------------
# health registry


@dataclass(frozen=True)
class HealthEvent:
    """One structured failure-handling event (for logs and clients)."""

    time: float
    kind: str  # "failure" | "breaker_open" | "breaker_close" | "probe_failed" | "degraded_read" | "sync_degraded" | "corrupt_share" | "quarantined"
    csp_id: str | None
    detail: str


@dataclass
class CSPHealth:
    """Snapshot of one provider's health (returned by the registry)."""

    csp_id: str
    state: BreakerState
    consecutive_failures: int
    successes: int
    failures: int
    last_error: str | None


class HealthRegistry:
    """Shared per-CSP health: breaker states, counters, event stream.

    One registry is shared by the transfer engine (fail-fast + outcome
    recording), the pipelines (alternate-CSP choice) and the selector
    (candidate filtering), so every layer sees the same liveness view.
    """

    def __init__(
        self,
        clock: Clock | None = None,
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        corruption_threshold: int = 3,
        metrics=None,
    ):
        self.clock = clock if clock is not None else WallClock()
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        # distinct from failure_threshold: a corrupt payload is strong
        # evidence (a Byzantine provider, not a flaky network), so the
        # quarantine trigger is tighter than the availability breaker
        self.corruption_threshold = corruption_threshold
        self._breakers: dict[str, CircuitBreaker] = {}
        self._successes: dict[str, int] = {}
        self._failures: dict[str, int] = {}
        self._corruptions: dict[str, int] = {}
        self._last_error: dict[str, str] = {}
        self._listeners: list[Callable[[HealthEvent], None]] = []
        # guards breaker-map population and the per-CSP counters; the
        # breakers themselves carry their own locks (reentrant so a
        # listener may query the registry from inside emit)
        self._lock = threading.RLock()
        # optional repro.obs.metrics.MetricsRegistry (duck-typed so this
        # module stays import-light); every emitted event is counted
        self.metrics = metrics

    # -- wiring ----------------------------------------------------------

    def bind_metrics(self, metrics) -> None:
        """Attach a metrics registry after construction (client wiring)."""
        self.metrics = metrics

    def breaker(self, csp_id: str) -> CircuitBreaker:
        with self._lock:
            brk = self._breakers.get(csp_id)
            if brk is None:
                brk = CircuitBreaker(
                    clock=self.clock,
                    failure_threshold=self.failure_threshold,
                    reset_timeout=self.reset_timeout,
                )
                self._breakers[csp_id] = brk
            return brk

    def subscribe(self, listener: Callable[[HealthEvent], None]) -> None:
        """Register a structured-event listener (e.g. a client's log)."""
        with self._lock:
            self._listeners.append(listener)

    def emit(self, kind: str, csp_id: str | None, detail: str) -> None:
        event = HealthEvent(
            time=self.clock.now(), kind=kind, csp_id=csp_id, detail=detail
        )
        if self.metrics is not None:
            # breaker transitions arrive here as breaker_open /
            # breaker_close / probe_failed, so one counter covers the
            # whole failure-handling event stream
            self.metrics.inc("cyrus_health_events_total",
                             kind=kind, csp=csp_id or "*")
        with self._lock:
            listeners = list(self._listeners)
        for listener in listeners:
            listener(event)

    # -- outcome recording ------------------------------------------------

    def allow(self, csp_id: str) -> bool:
        """Fail-fast gate: may an operation be dispatched to this CSP?"""
        return self.breaker(csp_id).allow()

    def record_success(self, csp_id: str) -> None:
        brk = self.breaker(csp_id)
        was_open = brk.state is not BreakerState.CLOSED
        brk.record_success()
        with self._lock:
            self._successes[csp_id] = self._successes.get(csp_id, 0) + 1
        # a success while fully OPEN (a force-dispatched last resort)
        # leaves the circuit open, so only emit when it really closed
        if was_open and brk.state is BreakerState.CLOSED:
            self.emit("breaker_close", csp_id, "probe succeeded; circuit closed")

    def record_failure(self, csp_id: str, error: str | BaseException = "") -> None:
        brk = self.breaker(csp_id)
        was_half_open = brk.state is BreakerState.HALF_OPEN
        before = brk.state
        brk.record_failure()
        with self._lock:
            self._failures[csp_id] = self._failures.get(csp_id, 0) + 1
            self._last_error[csp_id] = str(error)
        self.emit("failure", csp_id, str(error))
        if brk.state is BreakerState.OPEN and before is not BreakerState.OPEN:
            kind = "probe_failed" if was_half_open else "breaker_open"
            self.emit(
                kind, csp_id,
                f"circuit open after {brk.consecutive_failures} consecutive "
                f"failures (reset in {brk.reset_timeout:g}s)",
            )

    def record_probe_success(self, csp_id: str) -> None:
        """A caller-run recovery probe verified this provider works.

        Unlike :meth:`record_success` (which an OPEN circuit ignores),
        the probe is a deliberate out-of-band health check, so it closes
        the circuit immediately — the engine resumes dispatching without
        waiting out the reset timeout.
        """
        brk = self.breaker(csp_id)
        was_open = brk.state is not BreakerState.CLOSED
        brk.reset()
        with self._lock:
            self._successes[csp_id] = self._successes.get(csp_id, 0) + 1
        if was_open:
            self.emit("breaker_close", csp_id,
                      "probe succeeded; circuit closed")

    def record_corruption(self, csp_id: str, detail: str = "") -> None:
        """A verified-corrupt share came back from this provider.

        Emits a ``corrupt_share`` event every time; at
        ``corruption_threshold`` strikes the provider is quarantined —
        its breaker is forced open, so every health-filtered code path
        (engine dispatch, selection, alternate choice, repair placement)
        routes around it without any status flip in the cloud.  After
        the breaker's reset timeout a half-open probe lets the provider
        earn its way back; further corruption re-quarantines it.
        """
        with self._lock:
            strikes = self._corruptions.get(csp_id, 0) + 1
            self._corruptions[csp_id] = strikes
            self._last_error[csp_id] = detail or "corrupt share"
        if self.metrics is not None:
            self.metrics.inc("cyrus_corrupt_shares_total", csp=csp_id)
        self.emit("corrupt_share", csp_id, detail or "share failed verification")
        if strikes % self.corruption_threshold == 0:
            brk = self.breaker(csp_id)
            already_open = brk.state is BreakerState.OPEN
            brk.trip()
            if not already_open:
                self.emit(
                    "quarantined", csp_id,
                    f"{strikes} corrupt shares; circuit forced open "
                    f"(reset in {brk.reset_timeout:g}s)",
                )

    def corruption_count(self, csp_id: str) -> int:
        """Lifetime verified-corrupt shares attributed to one provider."""
        with self._lock:
            return self._corruptions.get(csp_id, 0)

    # -- queries ----------------------------------------------------------

    def is_live(self, csp_id: str) -> bool:
        """Candidate-filter view: False only while the breaker is OPEN.

        HALF_OPEN counts as live so that the probe can be routed; an
        unknown CSP is live (innocent until proven otherwise).
        """
        with self._lock:
            brk = self._breakers.get(csp_id)
        return brk is None or brk.state is not BreakerState.OPEN

    def live(self, csp_ids: Iterable[str]) -> list[str]:
        return [c for c in csp_ids if self.is_live(c)]

    def health_of(self, csp_id: str) -> CSPHealth:
        brk = self.breaker(csp_id)
        with self._lock:
            return CSPHealth(
                csp_id=csp_id,
                state=brk.state,
                consecutive_failures=brk.consecutive_failures,
                successes=self._successes.get(csp_id, 0),
                failures=self._failures.get(csp_id, 0),
                last_error=self._last_error.get(csp_id),
            )

    def snapshot(self) -> dict[str, CSPHealth]:
        """Health of every provider the registry has seen."""
        with self._lock:
            known = sorted(self._breakers)
        return {csp_id: self.health_of(csp_id) for csp_id in known}


# ---------------------------------------------------------------------------
# resilient provider wrapper


def _default_sleep(clock: Clock) -> Callable[[float], None]:
    """Backoff sleeper honouring the injected clock (see :func:`sleep_on`)."""
    return lambda seconds: sleep_on(clock, seconds)


class ResilientProvider(CloudProvider):
    """A provider wrapped in deadline + retry + breaker.

    Every one of the five primitives runs through the same envelope:

    1. breaker gate — if this CSP's circuit is open, raise
       :class:`CircuitOpenError` without touching the provider;
    2. dispatch, measuring elapsed time on ``clock``; an operation whose
       *measured* duration exceeds ``deadline_s`` is treated as a
       :class:`CSPTimeoutError` (synchronous providers cannot be
       interrupted mid-call, so the deadline detects — rather than
       aborts — a stall; with a shared SimClock the detection is exact);
    3. classify the outcome — transient errors back off per ``policy``
       and retry the same provider; permanent errors raise immediately;
    4. record the outcome in the shared :class:`HealthRegistry`.

    Only unavailability-type failures (outage, timeout) count toward the
    breaker: an auth or quota refusal proves the provider is *up*.
    """

    def __init__(
        self,
        inner: CloudProvider,
        policy: RetryPolicy | None = None,
        registry: HealthRegistry | None = None,
        deadline_s: float | None = None,
        clock: Clock | None = None,
        sleep: Callable[[float], None] | None = None,
        metrics=None,
    ):
        super().__init__(inner.csp_id)
        self.inner = inner
        self.policy = policy if policy is not None else RetryPolicy()
        self.clock = clock if clock is not None else WallClock()
        self.registry = (registry if registry is not None
                         else HealthRegistry(clock=self.clock))
        self.deadline_s = deadline_s
        self._sleep = sleep if sleep is not None else _default_sleep(self.clock)
        # optional repro.obs.metrics.MetricsRegistry.  Attempt-level
        # byte counters live here because internal retries are invisible
        # to the transfer engine: payload bytes are counted once per
        # *successful* call in cyrus_provider_bytes_total, and once per
        # *attempt* in cyrus_provider_attempt_bytes_total — the gap
        # between the two is exactly the retry traffic that used to
        # double-count in ad-hoc benchmark accounting.
        self.metrics = metrics

    # -- envelope ---------------------------------------------------------

    def _call(self, op: str, fn: Callable[[], object],
              up_bytes: int = 0) -> object:
        last_exc: CSPError | None = None
        for attempt in range(1, self.policy.max_attempts + 1):
            if not self.registry.allow(self.csp_id):
                raise CircuitOpenError(
                    f"circuit open; {op} not dispatched", csp_id=self.csp_id
                )
            if self.metrics is not None:
                self.metrics.inc("cyrus_provider_attempts_total",
                                 csp=self.csp_id, op=op.split(" ", 1)[0])
                if up_bytes:
                    self.metrics.inc("cyrus_provider_attempt_bytes_total",
                                     up_bytes, csp=self.csp_id, direction="up")
            started = self.clock.now()
            try:
                result = fn()
            except CSPError as exc:
                if isinstance(exc, CSPUnavailableError):
                    self.registry.record_failure(self.csp_id, exc)
                else:
                    # the provider answered: auth/quota/not-found are
                    # application-level refusals, not health failures
                    self.registry.record_success(self.csp_id)
                if self.policy.should_retry(exc, attempt):
                    last_exc = exc
                    if self.metrics is not None:
                        self.metrics.inc("cyrus_provider_retries_total",
                                         csp=self.csp_id)
                    self._sleep(self.policy.delay(attempt))
                    continue
                raise
            elapsed = self.clock.now() - started
            if self.deadline_s is not None and elapsed > self.deadline_s:
                exc = CSPTimeoutError(
                    f"{op} took {elapsed:.3f}s, deadline {self.deadline_s:g}s",
                    csp_id=self.csp_id,
                )
                self.registry.record_failure(self.csp_id, exc)
                if self.policy.should_retry(exc, attempt):
                    last_exc = exc
                    if self.metrics is not None:
                        self.metrics.inc("cyrus_provider_retries_total",
                                         csp=self.csp_id)
                    self._sleep(self.policy.delay(attempt))
                    continue
                raise exc
            self.registry.record_success(self.csp_id)
            if self.metrics is not None:
                down_bytes = (
                    len(result)
                    if isinstance(result, (bytes, bytearray, memoryview))
                    else 0
                )
                if down_bytes:
                    self.metrics.inc("cyrus_provider_attempt_bytes_total",
                                     down_bytes, csp=self.csp_id,
                                     direction="down")
                    self.metrics.inc("cyrus_provider_bytes_total",
                                     down_bytes, csp=self.csp_id,
                                     direction="down")
                if up_bytes:
                    self.metrics.inc("cyrus_provider_bytes_total",
                                     up_bytes, csp=self.csp_id, direction="up")
            return result
        raise last_exc  # pragma: no cover - loop always raises or returns

    # -- the five primitives ----------------------------------------------

    def authenticate(self, credentials):
        return self._call("authenticate",
                          lambda: self.inner.authenticate(credentials))

    def list(self, *, prefix: str = "") -> list[ObjectInfo]:
        """List stored objects whose names start with ``prefix``."""
        return self._call("list", lambda: self.inner.list(prefix=prefix))

    def upload(self, name: str, data: BytesLike) -> None:
        """Store ``data`` (any bytes-like object) under ``name``.

        The buffer passes through untouched; retention (if any) is the
        wrapped provider's.
        """
        self._call(f"upload {name}", lambda: self.inner.upload(name, data),
                   up_bytes=len(data))

    def download(self, name: str) -> bytes:
        return self._call(f"download {name}",
                          lambda: self.inner.download(name))

    def delete(self, name: str) -> None:
        self._call(f"delete {name}", lambda: self.inner.delete(name))

    # -- passthroughs -----------------------------------------------------

    def is_up(self, t: float | None = None) -> bool:
        """Delegate reachability to the wrapped provider when it models it."""
        checker = getattr(self.inner, "is_up", None)
        if callable(checker):
            return bool(checker(t))
        return True


def wrap_resilient(
    providers: Sequence[CloudProvider],
    policy: RetryPolicy | None = None,
    registry: HealthRegistry | None = None,
    deadline_s: float | None = None,
    clock: Clock | None = None,
    metrics=None,
) -> list[ResilientProvider]:
    """Wrap a provider fleet with one shared policy and registry."""
    clock = clock if clock is not None else WallClock()
    registry = registry if registry is not None else HealthRegistry(clock=clock)
    policy = policy if policy is not None else RetryPolicy()
    if metrics is not None and registry.metrics is None:
        registry.bind_metrics(metrics)
    return [
        ResilientProvider(
            p, policy=policy, registry=registry,
            deadline_s=deadline_s, clock=clock, metrics=metrics,
        )
        for p in providers
    ]
