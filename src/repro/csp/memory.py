"""Dict-backed provider for tests and as the storage engine of
:class:`repro.csp.simulated.SimulatedCSP`."""

from __future__ import annotations

from repro.csp.account import AuthToken, Credentials, issue_token
from repro.csp.base import BytesLike, CloudProvider, ObjectInfo
from repro.errors import ObjectNotFoundError


class InMemoryCSP(CloudProvider):
    """A provider holding objects in a dict.

    Upload semantics are configurable to emulate the vendor differences
    the paper calls out (Section 3.1): with ``overwrite=True`` (Dropbox
    style) an upload to an existing name replaces the object; with
    ``overwrite=False`` (Google Drive style) it appends a new revision
    and ``download`` returns the most recent one.  CYRUS's content-
    derived share names make the two indistinguishable, which is exactly
    the property the tests pin down.
    """

    def __init__(self, csp_id: str, overwrite: bool = True):
        super().__init__(csp_id)
        self.overwrite = overwrite
        self._objects: dict[str, list[tuple[float, bytes]]] = {}
        self._op_count = 0

    # -- bookkeeping ----------------------------------------------------

    @property
    def stored_bytes(self) -> int:
        """Total bytes across all revisions (what the account pays for)."""
        return sum(
            len(data) for revs in self._objects.values() for _, data in revs
        )

    @property
    def object_count(self) -> int:
        """Number of distinct object names."""
        return len(self._objects)

    def revision_count(self, name: str) -> int:
        """Number of stored revisions for one name (0 if absent)."""
        return len(self._objects.get(name, []))

    def object_size(self, name: str) -> int | None:
        """Size of the latest revision, or None when absent."""
        revs = self._objects.get(name)
        return len(revs[-1][1]) if revs else None

    def _tick(self) -> float:
        self._op_count += 1
        return float(self._op_count)

    # -- the five primitives ---------------------------------------------

    def authenticate(self, credentials: Credentials) -> AuthToken:
        return issue_token(credentials, provider_secret=self.csp_id)

    def list(self, *, prefix: str = "") -> list[ObjectInfo]:
        """List stored objects whose names start with ``prefix``."""
        out = []
        for name, revs in sorted(self._objects.items()):
            if not name.startswith(prefix):
                continue
            modified, data = revs[-1]
            out.append(ObjectInfo(name=name, size=len(data), modified=modified))
        return out

    def upload(self, name: str, data: BytesLike) -> None:
        """Store ``data`` (any bytes-like object) under ``name``.

        The single ``bytes(data)`` is the retention copy the store
        needs anyway (the caller may reuse its buffer); a payload that
        is already ``bytes`` is not copied again.
        """
        stamp = self._tick()
        if self.overwrite or name not in self._objects:
            self._objects[name] = [(stamp, bytes(data))]
        else:
            self._objects[name].append((stamp, bytes(data)))

    def download(self, name: str) -> bytes:
        revs = self._objects.get(name)
        if not revs:
            raise ObjectNotFoundError(
                f"no object {name!r} at {self.csp_id}", csp_id=self.csp_id
            )
        return revs[-1][1]

    def delete(self, name: str) -> None:
        if name not in self._objects:
            raise ObjectNotFoundError(
                f"no object {name!r} at {self.csp_id}", csp_id=self.csp_id
            )
        del self._objects[name]
