"""Directory-backed provider.

A real, persistent provider: objects are files under a root directory.
This is the implementation a user would point at a private storage
server mount (the paper's testbed uses "seven private cloud servers as
our CSPs").  Object names are hex share/metadata names, so they are
always safe path components, but we verify anyway.
"""

from __future__ import annotations

import os
import re
from pathlib import Path

from repro.csp.account import AuthToken, Credentials, issue_token
from repro.csp.base import BytesLike, CloudProvider, ObjectInfo
from repro.errors import CSPError, ObjectNotFoundError

_SAFE_NAME = re.compile(r"^[A-Za-z0-9._-]+$")


class LocalDirectoryCSP(CloudProvider):
    """Objects as files in a directory."""

    def __init__(self, csp_id: str, root: str | os.PathLike):
        super().__init__(csp_id)
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._sweep_torn_uploads()

    def _sweep_torn_uploads(self) -> None:
        """Remove ``.part`` temp files left by a crash mid-upload.

        An upload that died between ``write_bytes`` and ``replace``
        leaves a ``.part`` file holding a torn object; it is garbage —
        the upload never completed, so nothing references it.
        """
        for stale in self.root.glob("*.part"):
            if stale.is_file():
                try:
                    stale.unlink()
                except OSError:  # pragma: no cover - racing sweeper
                    pass

    def _path(self, name: str) -> Path:
        if not _SAFE_NAME.match(name):
            raise CSPError(f"unsafe object name {name!r}", csp_id=self.csp_id)
        return self.root / name

    def authenticate(self, credentials: Credentials) -> AuthToken:
        return issue_token(credentials, provider_secret=self.csp_id)

    def list(self, *, prefix: str = "") -> list[ObjectInfo]:
        """List stored objects whose names start with ``prefix``."""
        out = []
        for path in sorted(self.root.iterdir()):
            if not path.is_file() or not path.name.startswith(prefix):
                continue
            if path.name.endswith(".part"):
                continue  # in-flight (or torn) upload temp, not an object
            stat = path.stat()
            out.append(
                ObjectInfo(name=path.name, size=stat.st_size, modified=stat.st_mtime)
            )
        return out

    def upload(self, name: str, data: BytesLike) -> None:
        """Store ``data`` (any bytes-like object) under ``name``.

        Zero-copy: ``write_bytes`` accepts any buffer directly.
        """
        # write-then-rename so a crashed upload never leaves a torn object
        target = self._path(name)
        tmp = target.with_name(target.name + ".part")
        tmp.write_bytes(data)
        tmp.replace(target)

    def download(self, name: str) -> bytes:
        path = self._path(name)
        try:
            return path.read_bytes()
        except FileNotFoundError:
            raise ObjectNotFoundError(
                f"no object {name!r} at {self.csp_id}", csp_id=self.csp_id
            ) from None

    def delete(self, name: str) -> None:
        path = self._path(name)
        try:
            path.unlink()
        except FileNotFoundError:
            raise ObjectNotFoundError(
                f"no object {name!r} at {self.csp_id}", csp_id=self.csp_id
            ) from None
