"""The five-primitive cloud provider interface.

Paper Section 3.1: "CYRUS accommodates such differences by only using
basic cloud API calls: authenticate, list, upload, download, and delete,
which are available even on FTP servers."  Everything above this layer
is provider-agnostic.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.csp.account import AuthToken, Credentials

#: Payload type accepted by ``upload``: anything exposing the buffer
#: protocol.  The zero-copy encode path hands providers ``memoryview``
#: slices of the encoded share arrays; an implementation may only
#: materialise (``bytes(data)``) when it must retain the payload beyond
#: the call.
BytesLike = bytes | bytearray | memoryview


@dataclass(frozen=True)
class ObjectInfo:
    """Listing entry for one stored object."""

    name: str
    size: int
    modified: float  # provider timestamp, seconds


class CloudProvider(ABC):
    """Abstract CSP exposing only the five basic operations.

    Implementations may raise:

    * :class:`repro.errors.CSPAuthError` — bad or expired token;
    * :class:`repro.errors.CSPUnavailableError` — provider outage;
    * :class:`repro.errors.CSPQuotaExceededError` — account full;
    * :class:`repro.errors.ObjectNotFoundError` — missing object.
    """

    def __init__(self, csp_id: str):
        self.csp_id = csp_id

    @abstractmethod
    def authenticate(self, credentials: Credentials) -> AuthToken:
        """Exchange credentials for a session token."""

    @abstractmethod
    def list(self, *, prefix: str = "") -> list[ObjectInfo]:
        """List stored objects whose names start with ``prefix``."""

    @abstractmethod
    def upload(self, name: str, data: BytesLike) -> None:
        """Store ``data`` (any bytes-like object) under ``name``."""

    @abstractmethod
    def download(self, name: str) -> bytes:
        """Retrieve the object stored under ``name``."""

    @abstractmethod
    def delete(self, name: str) -> None:
        """Remove the object stored under ``name``."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.csp_id!r}>"
