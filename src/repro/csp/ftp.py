"""FTP-style provider.

Paper Section 3.1: CYRUS's five primitives are "available even on FTP
servers."  This module makes that claim executable: an in-process FTP
session (USER/PASS/LIST/STOR/RETR/DELE command protocol with reply
codes) and a provider that drives the five primitives through it.  The
point is the same as the REST connectors': nothing above the provider
interface knows the wire protocol changed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.csp.account import AuthToken, Credentials
from repro.csp.base import BytesLike, CloudProvider, ObjectInfo
from repro.errors import CSPAuthError, CSPError, ObjectNotFoundError


@dataclass
class FtpReply:
    """One server reply: a 3-digit code plus text/payload."""

    code: int
    text: str = ""
    payload: bytes = b""

    @property
    def ok(self) -> bool:
        # 331 (password required) and 350 (RNFR accepted, awaiting
        # RNTO) are mid-dialogue positives, not errors
        return 200 <= self.code < 300 or self.code in (331, 350)


@dataclass
class InProcessFtpServer:
    """A tiny FTP server: command strings in, coded replies out.

    Accounts are (user, password) pairs; files live in a flat
    directory, as CYRUS needs nothing more.
    """

    accounts: dict[str, str] = field(default_factory=dict)
    files: dict[str, tuple[float, bytes]] = field(default_factory=dict)
    command_log: list[str] = field(default_factory=list)
    _op_counter: int = 0

    def __post_init__(self) -> None:
        self._authed_users: set[str] = set()
        self._pending_user: str | None = None
        self._rename_from: str | None = None

    def execute(self, command: str, payload: bytes = b"") -> FtpReply:
        """Run one FTP command line (e.g. ``"STOR name"``)."""
        self.command_log.append(command)
        verb, _, arg = command.partition(" ")
        verb = verb.upper()
        if verb == "USER":
            if arg not in self.accounts:
                return FtpReply(530, "not logged in")
            self._pending_user = arg
            return FtpReply(331, "password required")
        if verb == "PASS":
            user = self._pending_user
            self._pending_user = None
            if user is None or self.accounts.get(user) != arg:
                return FtpReply(530, "login incorrect")
            self._authed_users.add(user)
            return FtpReply(230, "logged in")
        if not self._authed_users:
            return FtpReply(530, "please login first")
        if verb == "LIST":
            lines = []
            for name in sorted(self.files):
                if not name.startswith(arg):
                    continue
                modified, data = self.files[name]
                lines.append(f"{name}\t{len(data)}\t{modified}")
            return FtpReply(226, "transfer complete",
                            payload="\n".join(lines).encode("utf-8"))
        if verb == "STOR":
            self._op_counter += 1
            self.files[arg] = (float(self._op_counter), bytes(payload))
            return FtpReply(226, "stored")
        if verb == "RETR":
            entry = self.files.get(arg)
            if entry is None:
                return FtpReply(550, "file not found")
            return FtpReply(226, "transfer complete", payload=entry[1])
        if verb == "DELE":
            if arg not in self.files:
                return FtpReply(550, "file not found")
            del self.files[arg]
            return FtpReply(250, "deleted")
        if verb == "RNFR":
            if arg not in self.files:
                return FtpReply(550, "file not found")
            self._rename_from = arg
            return FtpReply(350, "ready for RNTO")
        if verb == "RNTO":
            source = self._rename_from
            self._rename_from = None
            if source is None or source not in self.files:
                return FtpReply(503, "bad sequence of commands")
            self.files[arg] = self.files.pop(source)
            return FtpReply(250, "renamed")
        return FtpReply(502, f"command not implemented: {verb}")


class FtpStyleCSP(CloudProvider):
    """The five primitives over the FTP command protocol."""

    def __init__(self, csp_id: str, server: InProcessFtpServer,
                 credentials: Credentials):
        super().__init__(csp_id)
        self.server = server
        self.credentials = credentials
        self._logged_in = False

    def _login(self) -> None:
        if self._logged_in:
            return
        user_reply = self.server.execute(f"USER {self.credentials.account_id}")
        if user_reply.code != 331:
            raise CSPAuthError(
                f"{self.csp_id}: USER rejected ({user_reply.code})",
                csp_id=self.csp_id,
            )
        pass_reply = self.server.execute(f"PASS {self.credentials.secret}")
        if pass_reply.code != 230:
            raise CSPAuthError(
                f"{self.csp_id}: PASS rejected ({pass_reply.code})",
                csp_id=self.csp_id,
            )
        self._logged_in = True
        self._sweep_torn_uploads()

    def _sweep_torn_uploads(self) -> None:
        """Delete stale ``.part`` objects a crashed uploader left behind
        (mirrors ``LocalDirectoryCSP``'s connect-time sweep)."""
        reply = self.server.execute("LIST")
        if not reply.ok:
            return
        for line in reply.payload.decode("utf-8").splitlines():
            name = line.split("\t")[0]
            if name.endswith(".part"):
                self.server.execute(f"DELE {name}")

    def _run(self, command: str, payload: bytes = b"") -> FtpReply:
        self._login()
        reply = self.server.execute(command, payload)
        if reply.code == 550:
            name = command.partition(" ")[2]
            raise ObjectNotFoundError(
                f"{self.csp_id}: no object {name!r}", csp_id=self.csp_id
            )
        if not reply.ok:
            raise CSPError(
                f"{self.csp_id}: {command.split()[0]} failed "
                f"({reply.code} {reply.text})",
                csp_id=self.csp_id,
            )
        return reply

    # -- the five primitives -------------------------------------------------

    def authenticate(self, credentials: Credentials) -> AuthToken:
        self.credentials = credentials
        self._logged_in = False
        self._login()
        return AuthToken(token="ftp-session",
                         account_id=credentials.account_id)

    def list(self, *, prefix: str = "") -> list[ObjectInfo]:
        """List stored objects whose names start with ``prefix``."""
        reply = self._run(f"LIST {prefix}".rstrip())
        out = []
        for line in reply.payload.decode("utf-8").splitlines():
            name, size, modified = line.split("\t")
            if name.endswith(".part"):
                continue  # an in-flight (or torn) upload, not an object
            out.append(ObjectInfo(name=name, size=int(size),
                                  modified=float(modified)))
        return out

    def upload(self, name: str, data: BytesLike) -> None:
        """Store ``data`` (any bytes-like object) under ``name``.

        The server's STOR retains the payload, which is its single
        materialisation; the wire layer passes the buffer through.
        """
        # STOR to a .part name, then rename: a session that dies
        # mid-STOR leaves a sweepable temporary, never a torn object
        # under the real name (mirrors LocalDirectoryCSP)
        part = f"{name}.part"
        self._run(f"STOR {part}", payload=data)
        self._run(f"RNFR {part}")
        self._run(f"RNTO {name}")

    def download(self, name: str) -> bytes:
        return self._run(f"RETR {name}").payload

    def delete(self, name: str) -> None:
        self._run(f"DELE {name}")
