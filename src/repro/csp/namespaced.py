"""Per-tenant key namespaces on a shared provider.

The fleet harness runs hundreds of tenants against the *same* CSP
accounts (shared links, shared quotas, shared failure domains — the
multi-tenant scenario CDStore motivates), but each tenant's CYRUS
client must see a private object space: chunk names are content
digests, so two tenants storing the same file would otherwise collide
on (and worse, garbage-collect) each other's shares.

:class:`NamespacedCSP` is a thin view over any :class:`CloudProvider`
that prefixes every object name with ``t/<tenant>/`` on the way in and
strips it on the way out.  The wrapper keeps the inner provider's
``csp_id`` — placement rings, netsim links, health registries and
metrics all aggregate per *account*, which is exactly the fleet-level
load picture the harness reports on.
"""

from __future__ import annotations

from repro.csp.account import AuthToken, Credentials
from repro.csp.base import BytesLike, CloudProvider, ObjectInfo

#: Namespace prefix template; the trailing slash keeps tenants like
#: ``t1`` and ``t10`` from shadowing each other's listings.
NAMESPACE_TEMPLATE = "t/{tenant}/"


def namespace_prefix(tenant_id: str) -> str:
    """The object-name prefix owned by one tenant."""
    if not tenant_id or "/" in tenant_id:
        raise ValueError(f"invalid tenant id {tenant_id!r}")
    return NAMESPACE_TEMPLATE.format(tenant=tenant_id)


class NamespacedCSP(CloudProvider):
    """A tenant-scoped view of a shared provider.

    All five primitives translate names; ``list`` both filters to the
    namespace and strips the prefix, so a client sees exactly the
    object space it would see on a private account.  ``is_up`` (the
    netsim availability probe) and quota errors pass through untouched
    — tenants share the account's fate, which is the point of the
    multi-tenant simulation.
    """

    def __init__(self, inner: CloudProvider, tenant_id: str):
        super().__init__(inner.csp_id)
        self.inner = inner
        self.tenant_id = tenant_id
        self.namespace = namespace_prefix(tenant_id)

    # -- name translation -------------------------------------------------

    def _qualify(self, name: str) -> str:
        return self.namespace + name

    def _strip(self, name: str) -> str:
        return name[len(self.namespace):]

    # -- the five primitives ----------------------------------------------

    def authenticate(self, credentials: Credentials) -> AuthToken:
        return self.inner.authenticate(credentials)

    def list(self, *, prefix: str = "") -> list[ObjectInfo]:
        qualified = self.inner.list(prefix=self._qualify(prefix))
        return [
            ObjectInfo(name=self._strip(info.name), size=info.size,
                       modified=info.modified)
            for info in qualified
        ]

    def upload(self, name: str, data: BytesLike) -> None:
        self.inner.upload(self._qualify(name), data)

    def download(self, name: str) -> bytes:
        return self.inner.download(self._qualify(name))

    def delete(self, name: str) -> None:
        self.inner.delete(self._qualify(name))

    # -- simulation passthrough -------------------------------------------

    def is_up(self, t: float | None = None) -> bool:
        """Availability probe forwarded to simulated providers."""
        probe = getattr(self.inner, "is_up", None)
        if probe is None:
            return True
        return probe(t) if t is not None else probe()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<NamespacedCSP {self.csp_id!r} "
                f"tenant={self.tenant_id!r}>")
