"""In-process vendor API server.

Hosts one dialect over a :class:`repro.csp.rest.dialects.ServerState`.
The server is deliberately dumb — all vendor behaviour lives in the
dialect's ``serve`` — but it owns the state, enforces a request log
(useful for asserting wire-level behaviour in tests), and can be
toggled unreachable to emulate outages at the HTTP layer.
"""

from __future__ import annotations

import math

from repro.csp.rest.dialects import Dialect, ServerState
from repro.csp.rest.wire import WireRequest, WireResponse


class InProcessRestServer:
    """One emulated vendor endpoint."""

    def __init__(
        self,
        dialect: Dialect,
        provider_secret: str = "server-secret",
        quota_bytes: float = math.inf,
    ):
        self.dialect = dialect
        self.state = ServerState(
            provider_secret=provider_secret, quota_bytes=quota_bytes
        )
        self.reachable = True
        self.request_log: list[WireRequest] = []

    def handle(self, request: WireRequest) -> WireResponse:
        """Dispatch one request; raises ConnectionError when 'down'."""
        if not self.reachable:
            raise ConnectionError(f"{self.dialect.name} endpoint unreachable")
        self.request_log.append(request)
        return self.dialect.serve(request, self.state)

    # -- test/ops helpers --------------------------------------------------

    def stored_bytes(self) -> int:
        return self.state.stored_bytes()

    def object_names(self) -> list[str]:
        return sorted(self.state.objects)

    def revision_count(self, name: str) -> int:
        return len(self.state.objects.get(name, []))
