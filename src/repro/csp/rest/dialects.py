"""Vendor API dialects.

Each dialect captures one real API family's shape — URL layout, payload
format (JSON or XML), authentication scheme, and file-handling
semantics — on both sides of the wire: request builders + response
parsers for the connector, and a server implementation for the
emulator.  The semantics differences are the ones the paper calls out
in Section 3.1:

* **Dropbox-style** — files keyed by path; uploading an existing path
  *overwrites*; JSON over REST; OAuth 2.0 bearer tokens.
* **Drive-style** — files keyed by opaque ids; uploading an existing
  name creates a *second* file; clients must search by name and pick a
  revision; JSON over REST; OAuth 2.0.
* **S3-style** — objects keyed by name; XML payloads; per-request
  HMAC signatures ("AWS Signature") instead of bearer tokens.
"""

from __future__ import annotations

import hashlib
import hmac
import json
import math
import urllib.parse
import xml.etree.ElementTree as ET
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.csp.base import ObjectInfo
from repro.csp.rest.wire import WireRequest, WireResponse
from repro.errors import CSPError


@dataclass
class ServerState:
    """Backing store and account state for one emulated vendor."""

    provider_secret: str
    quota_bytes: float = math.inf
    objects: dict[str, list[tuple[str, float, bytes]]] = field(
        default_factory=dict
    )  # name -> [(file_id, modified, data)] (revisions, newest last)
    issued_tokens: set[str] = field(default_factory=set)
    op_counter: int = 0

    def tick(self) -> float:
        self.op_counter += 1
        return float(self.op_counter)

    def stored_bytes(self) -> int:
        return sum(
            len(data)
            for revisions in self.objects.values()
            for _, _, data in revisions
        )

    def new_file_id(self, name: str) -> str:
        return hashlib.sha1(
            f"{name}:{self.op_counter}".encode("utf-8")
        ).hexdigest()[:16]


class Dialect(ABC):
    """Client request building + response parsing + server behaviour."""

    name: str = "abstract"

    # -- client side -----------------------------------------------------

    @abstractmethod
    def auth_request(self, account_id: str, secret: str) -> WireRequest: ...

    def make_token(self, account_id: str, secret: str,
                   response: WireResponse) -> str:
        """Session token from the auth exchange (default: OAuth JSON)."""
        return json.loads(response.body)["access_token"]

    @abstractmethod
    def list_request(self, token: str, prefix: str) -> WireRequest: ...

    @abstractmethod
    def parse_list(self, response: WireResponse) -> list[ObjectInfo]: ...

    @abstractmethod
    def upload_request(self, token: str, name: str,
                       data: bytes) -> WireRequest: ...

    @abstractmethod
    def download_request(self, token: str, name: str) -> WireRequest: ...

    @abstractmethod
    def delete_request(self, token: str, name: str) -> WireRequest: ...

    # -- server side -------------------------------------------------------

    @abstractmethod
    def serve(self, request: WireRequest, state: ServerState) -> WireResponse: ...

    # -- shared helpers -----------------------------------------------------

    @staticmethod
    def _json(status: int, payload) -> WireResponse:
        return WireResponse(
            status=status,
            headers={"Content-Type": "application/json"},
            body=json.dumps(payload).encode("utf-8"),
        )

    @staticmethod
    def _check_bearer(request: WireRequest, state: ServerState) -> bool:
        header = request.headers.get("Authorization", "")
        return (
            header.startswith("Bearer ")
            and header[len("Bearer "):] in state.issued_tokens
        )

    @staticmethod
    def _quota_ok(state: ServerState, name: str, data: bytes,
                  overwrite: bool) -> bool:
        replaced = 0
        if overwrite and name in state.objects:
            replaced = sum(len(d) for _, _, d in state.objects[name])
        return state.stored_bytes() - replaced + len(data) <= state.quota_bytes


# ---------------------------------------------------------------------------
# Dropbox-style: path-keyed, overwrite, JSON, OAuth 2.0
# ---------------------------------------------------------------------------


class DropboxStyleDialect(Dialect):
    """Path-keyed JSON API in the shape of Dropbox's v2 endpoints."""

    name = "dropbox-style"

    def auth_request(self, account_id: str, secret: str) -> WireRequest:
        return WireRequest(
            method="POST",
            path="/oauth2/token",
            body=urllib.parse.urlencode(
                {"grant_type": "client_credentials",
                 "client_id": account_id, "client_secret": secret}
            ).encode("ascii"),
        )

    def list_request(self, token: str, prefix: str) -> WireRequest:
        return WireRequest(
            method="POST",
            path="/2/files/list_folder",
            headers={"Authorization": f"Bearer {token}",
                     "Content-Type": "application/json"},
            body=json.dumps({"prefix": prefix}).encode("utf-8"),
        )

    def parse_list(self, response: WireResponse) -> list[ObjectInfo]:
        entries = json.loads(response.body)["entries"]
        return [
            ObjectInfo(name=e["path_display"], size=e["size"],
                       modified=e["server_modified"])
            for e in entries
        ]

    def upload_request(self, token: str, name: str, data: bytes) -> WireRequest:
        return WireRequest(
            method="POST",
            path="/2/files/upload",
            headers={
                "Authorization": f"Bearer {token}",
                "Dropbox-API-Arg": json.dumps(
                    {"path": name, "mode": "overwrite"}
                ),
                "Content-Type": "application/octet-stream",
            },
            body=data,
        )

    def download_request(self, token: str, name: str) -> WireRequest:
        return WireRequest(
            method="POST",
            path="/2/files/download",
            headers={
                "Authorization": f"Bearer {token}",
                "Dropbox-API-Arg": json.dumps({"path": name}),
            },
        )

    def delete_request(self, token: str, name: str) -> WireRequest:
        return WireRequest(
            method="POST",
            path="/2/files/delete_v2",
            headers={"Authorization": f"Bearer {token}",
                     "Content-Type": "application/json"},
            body=json.dumps({"path": name}).encode("utf-8"),
        )

    # -- server ----------------------------------------------------------

    def serve(self, request: WireRequest, state: ServerState) -> WireResponse:
        if request.path == "/oauth2/token":
            form = urllib.parse.parse_qs(request.body.decode("ascii"))
            token = hmac.new(
                state.provider_secret.encode(),
                f"{form['client_id'][0]}:{form['client_secret'][0]}".encode(),
                hashlib.sha256,
            ).hexdigest()
            state.issued_tokens.add(token)
            return self._json(200, {"access_token": token,
                                    "token_type": "bearer"})
        if not self._check_bearer(request, state):
            return self._json(401, {"error": "invalid_access_token"})
        if request.path == "/2/files/list_folder":
            prefix = json.loads(request.body)["prefix"]
            entries = []
            for name in sorted(state.objects):
                if not name.startswith(prefix):
                    continue
                _, modified, data = state.objects[name][-1]
                entries.append(
                    {"path_display": name, "size": len(data),
                     "server_modified": modified}
                )
            return self._json(200, {"entries": entries, "has_more": False})
        if request.path == "/2/files/upload":
            arg = json.loads(request.headers["Dropbox-API-Arg"])
            name = arg["path"]
            if not self._quota_ok(state, name, request.body, overwrite=True):
                return self._json(507, {"error": "insufficient_space"})
            # path-keyed overwrite: one revision per name
            state.objects[name] = [
                (state.new_file_id(name), state.tick(), bytes(request.body))
            ]
            return self._json(200, {"path_display": name,
                                    "size": len(request.body)})
        if request.path == "/2/files/download":
            arg = json.loads(request.headers["Dropbox-API-Arg"])
            revisions = state.objects.get(arg["path"])
            if not revisions:
                return self._json(409, {"error": "path/not_found"})
            return WireResponse(status=200, body=revisions[-1][2])
        if request.path == "/2/files/delete_v2":
            name = json.loads(request.body)["path"]
            if name not in state.objects:
                return self._json(409, {"error": "path_lookup/not_found"})
            del state.objects[name]
            return self._json(200, {"path_display": name})
        return self._json(404, {"error": "unknown_endpoint"})


# ---------------------------------------------------------------------------
# Drive-style: id-keyed, duplicate-on-upload, JSON, OAuth 2.0
# ---------------------------------------------------------------------------


class DriveStyleDialect(Dialect):
    """Opaque-file-id JSON API in the shape of the Drive v3 endpoints.

    The crucial quirk (paper Section 3.1): "when a client uploads a file
    with existing filename, Dropbox overwrites the previous file, but
    Google Drive does not" — every upload creates a new file id, and
    readers must search by name and pick a revision.
    """

    name = "drive-style"

    def auth_request(self, account_id: str, secret: str) -> WireRequest:
        return WireRequest(
            method="POST",
            path="/oauth2/v4/token",
            body=urllib.parse.urlencode(
                {"grant_type": "client_credentials",
                 "client_id": account_id, "client_secret": secret}
            ).encode("ascii"),
        )

    def list_request(self, token: str, prefix: str) -> WireRequest:
        return WireRequest(
            method="GET",
            path="/drive/v3/files",
            query={"q": f"name contains '{prefix}'"},
            headers={"Authorization": f"Bearer {token}"},
        )

    def parse_list(self, response: WireResponse) -> list[ObjectInfo]:
        files = json.loads(response.body)["files"]
        # duplicates possible: report the newest revision per name
        newest: dict[str, dict] = {}
        for entry in files:
            current = newest.get(entry["name"])
            if current is None or entry["modifiedTime"] > current["modifiedTime"]:
                newest[entry["name"]] = entry
        return [
            ObjectInfo(name=e["name"], size=int(e["size"]),
                       modified=e["modifiedTime"])
            for e in sorted(newest.values(), key=lambda e: e["name"])
        ]

    def upload_request(self, token: str, name: str, data: bytes) -> WireRequest:
        return WireRequest(
            method="POST",
            path="/upload/drive/v3/files",
            query={"uploadType": "media", "name": name},
            headers={"Authorization": f"Bearer {token}",
                     "Content-Type": "application/octet-stream"},
            body=data,
        )

    def download_request(self, token: str, name: str) -> WireRequest:
        # by-name download endpoint does the search server-side; real
        # connectors issue files.list then files.get(alt=media) — the
        # emulator folds the two for wire simplicity, preserving the
        # pick-newest-revision semantics
        return WireRequest(
            method="GET",
            path="/drive/v3/files/by-name",
            query={"name": name, "alt": "media"},
            headers={"Authorization": f"Bearer {token}"},
        )

    def delete_request(self, token: str, name: str) -> WireRequest:
        return WireRequest(
            method="DELETE",
            path="/drive/v3/files/by-name",
            query={"name": name},
            headers={"Authorization": f"Bearer {token}"},
        )

    # -- server -------------------------------------------------------------

    def serve(self, request: WireRequest, state: ServerState) -> WireResponse:
        if request.path == "/oauth2/v4/token":
            form = urllib.parse.parse_qs(request.body.decode("ascii"))
            token = hmac.new(
                state.provider_secret.encode(),
                f"{form['client_id'][0]}:{form['client_secret'][0]}".encode(),
                hashlib.sha256,
            ).hexdigest()
            state.issued_tokens.add(token)
            return self._json(200, {"access_token": token})
        if not self._check_bearer(request, state):
            return self._json(401, {"error": {"code": 401}})
        if request.path == "/drive/v3/files" and request.method == "GET":
            q = request.query.get("q", "")
            prefix = ""
            if "contains" in q:
                prefix = q.split("'")[1]
            files = []
            for name, revisions in sorted(state.objects.items()):
                if not name.startswith(prefix):
                    continue
                for file_id, modified, data in revisions:
                    files.append(
                        {"id": file_id, "name": name, "size": str(len(data)),
                         "modifiedTime": modified}
                    )
            return self._json(200, {"files": files})
        if request.path == "/upload/drive/v3/files":
            name = request.query["name"]
            if not self._quota_ok(state, name, request.body, overwrite=False):
                return self._json(403, {"error": {"code": 403,
                                                  "reason": "storageQuotaExceeded"}})
            # id-keyed: appends a NEW file even if the name exists
            file_id = state.new_file_id(name)
            state.objects.setdefault(name, []).append(
                (file_id, state.tick(), bytes(request.body))
            )
            return self._json(200, {"id": file_id, "name": name})
        if request.path == "/drive/v3/files/by-name":
            name = request.query["name"]
            revisions = state.objects.get(name)
            if not revisions:
                return self._json(404, {"error": {"code": 404}})
            if request.method == "GET":
                return WireResponse(status=200, body=revisions[-1][2])
            if request.method == "DELETE":
                del state.objects[name]
                return WireResponse(status=204)
        return self._json(404, {"error": {"code": 404}})


# ---------------------------------------------------------------------------
# S3-style: key-keyed, XML, HMAC request signatures
# ---------------------------------------------------------------------------


class S3StyleDialect(Dialect):
    """Bucket/key XML API with per-request HMAC signatures.

    No session: every request carries ``Authorization: AWS
    <account>:<signature>`` where the signature is an HMAC over the
    method and path with the account secret (a simplified AWS
    Signature).  Responses are XML, as Table 2 records for Amazon S3.
    """

    name = "s3-style"

    @staticmethod
    def _sign(secret: str, method: str, path: str) -> str:
        return hmac.new(secret.encode(), f"{method}\n{path}".encode(),
                        hashlib.sha256).hexdigest()

    def auth_request(self, account_id: str, secret: str) -> WireRequest:
        # signature auth has no token exchange; probe with a signed list
        return WireRequest(
            method="GET", path="/bucket",
            headers={"Authorization":
                     f"AWS {account_id}:{self._sign(secret, 'GET', '/bucket')}"},
        )

    def make_token(self, account_id: str, secret: str,
                   response: WireResponse) -> str:
        # no session: the "token" is the signing material itself, held
        # client-side and used to sign every request
        return f"{account_id}:{secret}"

    def _signed(self, token: str, method: str, path: str,
                query: dict[str, str] | None = None,
                body: bytes = b"") -> WireRequest:
        account_id, _, secret = token.partition(":")
        return WireRequest(
            method=method, path=path, query=dict(query or {}),
            headers={"Authorization":
                     f"AWS {account_id}:{self._sign(secret, method, path)}"},
            body=body,
        )

    def list_request(self, token: str, prefix: str) -> WireRequest:
        return self._signed(token, "GET", "/bucket", {"prefix": prefix})

    def parse_list(self, response: WireResponse) -> list[ObjectInfo]:
        root = ET.fromstring(response.body.decode("utf-8"))
        out = []
        for contents in root.findall("Contents"):
            out.append(
                ObjectInfo(
                    name=contents.findtext("Key"),
                    size=int(contents.findtext("Size")),
                    modified=float(contents.findtext("LastModified")),
                )
            )
        return out

    def upload_request(self, token: str, name: str, data: bytes) -> WireRequest:
        return self._signed(token, "PUT", f"/bucket/{name}", body=data)

    def download_request(self, token: str, name: str) -> WireRequest:
        return self._signed(token, "GET", f"/bucket/{name}")

    def delete_request(self, token: str, name: str) -> WireRequest:
        return self._signed(token, "DELETE", f"/bucket/{name}")

    # -- server -------------------------------------------------------------

    @staticmethod
    def _xml_error(status: int, code: str) -> WireResponse:
        body = f"<Error><Code>{code}</Code></Error>".encode("utf-8")
        return WireResponse(status=status,
                            headers={"Content-Type": "application/xml"},
                            body=body)

    def _check_signature(self, request: WireRequest,
                         state: ServerState) -> bool:
        header = request.headers.get("Authorization", "")
        if not header.startswith("AWS "):
            return False
        account, _, signature = header[4:].partition(":")
        expected = self._sign(
            self.account_secret(state, account), request.method, request.path
        )
        return hmac.compare_digest(signature, expected)

    @staticmethod
    def account_secret(state: ServerState, account: str) -> str:
        """The secret key the provider issued to this account."""
        return hmac.new(state.provider_secret.encode(), account.encode(),
                        hashlib.sha256).hexdigest()

    def serve(self, request: WireRequest, state: ServerState) -> WireResponse:
        if not self._check_signature(request, state):
            return self._xml_error(403, "SignatureDoesNotMatch")
        if request.path == "/bucket" and request.method == "GET":
            prefix = request.query.get("prefix", "")
            root = ET.Element("ListBucketResult")
            for name in sorted(state.objects):
                if not name.startswith(prefix):
                    continue
                _, modified, data = state.objects[name][-1]
                contents = ET.SubElement(root, "Contents")
                ET.SubElement(contents, "Key").text = name
                ET.SubElement(contents, "Size").text = str(len(data))
                ET.SubElement(contents, "LastModified").text = str(modified)
            return WireResponse(status=200,
                                headers={"Content-Type": "application/xml"},
                                body=ET.tostring(root))
        if request.path.startswith("/bucket/"):
            name = request.path[len("/bucket/"):]
            if request.method == "PUT":
                if not self._quota_ok(state, name, request.body,
                                      overwrite=True):
                    return self._xml_error(507, "QuotaExceeded")
                state.objects[name] = [
                    (state.new_file_id(name), state.tick(),
                     bytes(request.body))
                ]
                return WireResponse(status=200)
            revisions = state.objects.get(name)
            if request.method == "GET":
                if not revisions:
                    return self._xml_error(404, "NoSuchKey")
                return WireResponse(status=200, body=revisions[-1][2])
            if request.method == "DELETE":
                if not revisions:
                    return self._xml_error(404, "NoSuchKey")
                del state.objects[name]
                return WireResponse(status=204)
        return self._xml_error(404, "NoSuchEndpoint")
