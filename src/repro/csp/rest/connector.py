"""The CYRUS-side REST connector.

Maps the five provider primitives onto a vendor dialect's wire calls,
caches the session token (the prototype "locally cach[es]
authentication keys so that users need only login to their CSPs once",
Section 7.5), re-authenticates once on a 401, and translates vendor
status codes into the library's exception hierarchy.
"""

from __future__ import annotations

from repro.csp.account import AuthToken, Credentials
from repro.csp.base import BytesLike, CloudProvider, ObjectInfo
from repro.csp.rest.dialects import Dialect
from repro.csp.rest.server import InProcessRestServer
from repro.csp.rest.wire import WireResponse
from repro.errors import (
    CSPAuthError,
    CSPError,
    CSPQuotaExceededError,
    CSPUnavailableError,
    ObjectNotFoundError,
)


class RestConnectorCSP(CloudProvider):
    """A provider speaking one vendor's REST dialect.

    Args:
        csp_id: Provider identifier inside CYRUS.
        server: The endpoint (in-process emulator here; a real HTTP
            transport would slot in identically).
        credentials: Account credentials used for (re-)authentication.
    """

    def __init__(
        self,
        csp_id: str,
        server: InProcessRestServer,
        credentials: Credentials,
    ):
        super().__init__(csp_id)
        self.server = server
        self.credentials = credentials
        self._token: str | None = None

    @property
    def dialect(self) -> Dialect:
        return self.server.dialect

    # -- plumbing -----------------------------------------------------------

    def _send(self, request) -> WireResponse:
        try:
            return self.server.handle(request)
        except ConnectionError as exc:
            raise CSPUnavailableError(str(exc), csp_id=self.csp_id) from exc

    def _ensure_token(self) -> str:
        if self._token is None:
            self.authenticate(self.credentials)
        assert self._token is not None
        return self._token

    def _call(self, build):
        """Send a token-bearing request, re-authenticating once on 401."""
        response = self._send(build(self._ensure_token()))
        if response.status == 401:
            self._token = None
            response = self._send(build(self._ensure_token()))
            if response.status == 401:
                raise CSPAuthError(
                    f"{self.csp_id}: authentication rejected",
                    csp_id=self.csp_id,
                )
        return response

    def _raise_for(self, response: WireResponse, name: str) -> None:
        if response.ok:
            return
        if response.status in (404, 409):
            raise ObjectNotFoundError(
                f"{self.csp_id}: no object {name!r}", csp_id=self.csp_id
            )
        quota_hit = response.status == 507 or (
            response.status == 403 and b"uota" in response.body
        )
        if quota_hit:
            raise CSPQuotaExceededError(
                f"{self.csp_id}: quota exceeded storing {name!r}",
                csp_id=self.csp_id,
            )
        if response.status == 403:
            raise CSPAuthError(
                f"{self.csp_id}: request rejected (403)", csp_id=self.csp_id
            )
        raise CSPError(
            f"{self.csp_id}: API error {response.status} on {name!r}",
            csp_id=self.csp_id,
        )

    # -- the five primitives ---------------------------------------------

    def authenticate(self, credentials: Credentials) -> AuthToken:
        self.credentials = credentials
        response = self._send(
            self.dialect.auth_request(credentials.account_id,
                                      credentials.secret)
        )
        if not response.ok:
            raise CSPAuthError(
                f"{self.csp_id}: authentication failed "
                f"({response.status})",
                csp_id=self.csp_id,
            )
        self._token = self.dialect.make_token(
            credentials.account_id, credentials.secret, response
        )
        return AuthToken(token=self._token or "signed",
                         account_id=credentials.account_id)

    def list(self, *, prefix: str = "") -> list[ObjectInfo]:
        response = self._call(
            lambda token: self.dialect.list_request(token, prefix)
        )
        self._raise_for(response, prefix or "<all>")
        return self.dialect.parse_list(response)

    def upload(self, name: str, data: BytesLike) -> None:
        response = self._call(
            lambda token: self.dialect.upload_request(token, name, data)
        )
        self._raise_for(response, name)

    def download(self, name: str) -> bytes:
        response = self._call(
            lambda token: self.dialect.download_request(token, name)
        )
        self._raise_for(response, name)
        return response.body

    def delete(self, name: str) -> None:
        response = self._call(
            lambda token: self.dialect.delete_request(token, name)
        )
        self._raise_for(response, name)
