"""HTTP-shaped wire types for the vendor API emulation.

Just enough structure to express real vendor APIs — method, path,
query parameters, headers, body — without an actual socket.  The
connector builds :class:`WireRequest` objects exactly as it would build
HTTP requests; the in-process server dispatches on method + path.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class WireRequest:
    """One API call."""

    method: str  # GET / POST / PUT / DELETE
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def __post_init__(self) -> None:
        if self.method not in ("GET", "POST", "PUT", "DELETE"):
            raise ValueError(f"unsupported method {self.method!r}")
        if not self.path.startswith("/"):
            raise ValueError(f"path must start with '/', got {self.path!r}")


@dataclass
class WireResponse:
    """One API reply."""

    status: int
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300
