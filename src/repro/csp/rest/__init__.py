"""Vendor REST connectors (paper Section 6, Table 2).

The prototype's seventh component: "cloud connectors for popular
commercial CSPs ... This task involves creating a specific REST URL
with proper parameters and content."  This package reproduces that
layer against in-process emulations of the vendor APIs:

* :mod:`repro.csp.rest.wire` — minimal HTTP-shaped request/response
  types;
* :mod:`repro.csp.rest.dialects` — vendor dialects with Table 2's real
  heterogeneity: Dropbox-style (JSON, path-keyed, overwrite-on-upload,
  OAuth 2.0 bearer), Drive-style (JSON, opaque file ids,
  duplicate-on-upload, OAuth 2.0), and S3-style (XML, key-keyed,
  signature auth);
* :mod:`repro.csp.rest.server` — an in-process server hosting one
  dialect over an object store, enforcing auth, quotas and status
  codes;
* :mod:`repro.csp.rest.connector` — the CYRUS-side connector mapping
  the five primitives onto each dialect and vendor errors onto the
  library's exception hierarchy.

CYRUS code above the :class:`repro.csp.base.CloudProvider` interface
runs unmodified over any mix of these — the design claim the tests pin
down.
"""

from repro.csp.rest.connector import RestConnectorCSP
from repro.csp.rest.dialects import (
    DriveStyleDialect,
    DropboxStyleDialect,
    S3StyleDialect,
)
from repro.csp.rest.server import InProcessRestServer
from repro.csp.rest.wire import WireRequest, WireResponse

__all__ = [
    "RestConnectorCSP",
    "InProcessRestServer",
    "DropboxStyleDialect",
    "DriveStyleDialect",
    "S3StyleDialect",
    "WireRequest",
    "WireResponse",
]
