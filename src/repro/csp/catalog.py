"""The paper's Table 2: twenty commercial CSPs.

Each entry records the API format, protocol, authentication scheme, and
the RTT measured from Korea; throughput follows from the RTT via the
TCP model in :mod:`repro.netsim.tcp` (the paper derives its throughput
column the same way).  CSPs marked ``amazon_platform`` are the ones the
paper flags with an asterisk — their destination IPs resolve to Amazon
infrastructure, so storing two shares of one chunk on them risks
correlated failure (Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netsim.link import Link
from repro.netsim.tcp import mathis_throughput


@dataclass(frozen=True)
class CSPSpec:
    """One row of Table 2."""

    name: str
    format: str
    protocol: str
    auth: str
    rtt_ms: float
    amazon_platform: bool = False

    @property
    def throughput_mbps(self) -> float:
        """Throughput in Mbit/s via the paper's RTT-based TCP model."""
        return mathis_throughput(self.rtt_ms / 1000.0) * 8 / 1e6

    @property
    def throughput_bytes(self) -> float:
        """Throughput in bytes/s."""
        return mathis_throughput(self.rtt_ms / 1000.0)

    def link(self) -> Link:
        """A simulated link with this CSP's RTT-derived capacity."""
        return Link.from_rtt(self.name, self.rtt_ms)


#: The paper's Table 2, in row order.  Asterisked CSPs (Amazon
#: destination IPs) carry ``amazon_platform=True``.
TABLE2: tuple[CSPSpec, ...] = (
    CSPSpec("Amazon S3", "XML", "SOAP/REST", "AWS Signature", 235, True),
    CSPSpec("Box", "JSON", "REST", "OAuth 2.0", 149),
    CSPSpec("Dropbox", "JSON", "REST", "OAuth 2.0", 137),
    CSPSpec("OneDrive", "JSON", "REST", "OAuth 2.0", 142),
    CSPSpec("Google Drive", "JSON", "REST", "OAuth 2.0", 71),
    CSPSpec("SugarSync", "XML", "REST", "OAuth-like", 146),
    CSPSpec("CloudMine", "JSON", "REST", "ID/Password", 215),
    CSPSpec("Rackspace", "XML/JSON", "REST", "API Key", 186),
    CSPSpec("Copy", "JSON", "REST", "OAuth", 192),
    CSPSpec("ShareFile", "JSON", "REST", "OAuth 2.0", 215),
    CSPSpec("4Shared", "XML", "SOAP", "OAuth 1.0", 186),
    CSPSpec("DigitalBucket", "XML", "REST", "ID/Password", 217, True),
    CSPSpec("Bitcasa", "JSON", "REST", "OAuth 2.0", 139, True),
    CSPSpec("Egnyte", "JSON", "REST", "OAuth 2.0", 153),
    CSPSpec("MediaFire", "XML/JSON", "REST", "OAuth-like", 192),
    CSPSpec("HP Cloud", "XML/JSON", "REST", "OpenStack Keystone V3", 210),
    CSPSpec("CloudApp", "JSON", "REST", "HTTP Digest", 205, True),
    CSPSpec("Safe Creative", "XML/JSON", "REST", "Two-step authentication", 295, True),
    CSPSpec("FilesAnywhere", "XML", "SOAP", "Custom", 202),
    CSPSpec("CenturyLink", "XML/JSON", "SOAP/REST", "SAML 2.0", 293),
)

#: The paper's expected throughput column (Mbps), for the Table 2 bench.
TABLE2_THROUGHPUT_MBPS: dict[str, float] = {
    "Amazon S3": 1.349,
    "Box": 2.128,
    "Dropbox": 2.314,
    "OneDrive": 2.233,
    "Google Drive": 4.465,
    "SugarSync": 2.171,
    "CloudMine": 1.474,
    "Rackspace": 1.704,
    "Copy": 1.651,
    "ShareFile": 1.474,
    "4Shared": 1.704,
    "DigitalBucket": 1.461,
    "Bitcasa": 2.281,
    "Egnyte": 2.072,
    "MediaFire": 1.651,
    "HP Cloud": 1.509,
    "CloudApp": 1.546,
    "Safe Creative": 1.075,
    "FilesAnywhere": 1.569,
    "CenturyLink": 1.082,
}

#: The four CSPs the prototype implements connectors for (Section 6).
PROTOTYPE_CSPS: tuple[str, ...] = ("Dropbox", "Google Drive", "OneDrive", "Box")


def spec_by_name(name: str) -> CSPSpec:
    """Look up a Table 2 row by CSP name."""
    for spec in TABLE2:
        if spec.name == name:
            return spec
    raise KeyError(f"no CSP named {name!r} in Table 2")


def amazon_hosted() -> list[CSPSpec]:
    """The five asterisked (Amazon-platform) CSPs."""
    return [s for s in TABLE2 if s.amazon_platform]
