"""Async cloud-provider protocol and the sync-provider adapter.

The asyncio transfer core (:mod:`repro.core.async_engine`) speaks to
providers through :class:`AsyncCloudProvider` — the same five primitives
as :class:`repro.csp.base.CloudProvider`, as coroutines.  Two kinds of
implementation exist:

* native async providers (e.g. a future aiohttp-backed REST connector)
  subclass :class:`AsyncCloudProvider` directly and get genuine
  event-driven concurrency — thousands of in-flight operations cost
  one coroutine each, not one thread each;
* every existing synchronous provider is adapted by
  :class:`SyncProviderAdapter`, which offloads each blocking call to a
  thread-pool executor (``loop.run_in_executor``).  Concurrency for
  adapted providers is therefore additionally bounded by the executor
  width, which the engine sizes from its in-flight caps.

:func:`as_async_provider` is the canonical coercion: async providers
pass through untouched, sync providers gain an adapter.
"""

from __future__ import annotations

import asyncio
import functools
from abc import ABC, abstractmethod
from concurrent.futures import Executor
from typing import TYPE_CHECKING

from repro.csp.base import BytesLike, CloudProvider, ObjectInfo

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.csp.account import AuthToken, Credentials


class AsyncCloudProvider(ABC):
    """Abstract async CSP exposing the five basic operations.

    The contract mirrors :class:`repro.csp.base.CloudProvider` exactly —
    same error hierarchy, same keyword-only ``list(prefix=...)``, same
    bytes-like ``upload`` payloads — with every method a coroutine.
    """

    def __init__(self, csp_id: str):
        self.csp_id = csp_id

    @abstractmethod
    async def authenticate(self, credentials: "Credentials") -> "AuthToken":
        """Exchange credentials for a session token."""

    @abstractmethod
    async def list(self, *, prefix: str = "") -> list[ObjectInfo]:
        """List stored objects whose names start with ``prefix``."""

    @abstractmethod
    async def upload(self, name: str, data: BytesLike) -> None:
        """Store ``data`` (any bytes-like object) under ``name``."""

    @abstractmethod
    async def download(self, name: str) -> bytes:
        """Retrieve the object stored under ``name``."""

    @abstractmethod
    async def delete(self, name: str) -> None:
        """Remove the object stored under ``name``."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.csp_id!r}>"


class SyncProviderAdapter(AsyncCloudProvider):
    """Adapt a synchronous provider to the async protocol.

    Each call runs on ``executor`` via ``loop.run_in_executor`` (the
    loop's default executor when None), so a blocking provider never
    stalls the event loop.  The adapter adds no semantics of its own:
    exceptions, return values and retry classification are exactly the
    wrapped provider's.
    """

    def __init__(self, inner: CloudProvider, executor: Executor | None = None):
        super().__init__(inner.csp_id)
        self.inner = inner
        #: engine-owned dispatch executor; mutable so the owning engine
        #: can (re)bind its pool after construction
        self.executor = executor

    async def _offload(self, fn, *args, **kwargs):
        loop = asyncio.get_running_loop()
        call = functools.partial(fn, *args, **kwargs)
        return await loop.run_in_executor(self.executor, call)

    async def authenticate(self, credentials: "Credentials") -> "AuthToken":
        return await self._offload(self.inner.authenticate, credentials)

    async def list(self, *, prefix: str = "") -> list[ObjectInfo]:
        return await self._offload(self.inner.list, prefix=prefix)

    async def upload(self, name: str, data: BytesLike) -> None:
        await self._offload(self.inner.upload, name, data)

    async def download(self, name: str) -> bytes:
        return await self._offload(self.inner.download, name)

    async def delete(self, name: str) -> None:
        await self._offload(self.inner.delete, name)

    def is_up(self, t: float | None = None) -> bool:
        """Delegate reachability to the wrapped provider when it models it."""
        checker = getattr(self.inner, "is_up", None)
        if callable(checker):
            return bool(checker(t))
        return True


def as_async_provider(
    provider: CloudProvider | AsyncCloudProvider,
    executor: Executor | None = None,
) -> AsyncCloudProvider:
    """Coerce any provider to the async protocol (idempotent)."""
    if isinstance(provider, AsyncCloudProvider):
        return provider
    return SyncProviderAdapter(provider, executor=executor)
