"""Account and authentication emulation.

Table 2 shows CSPs using OAuth 2.0, OAuth 1.0, API keys, ID/password,
AWS signatures, and more.  CYRUS "utilize[s] existing CSP authentication
mechanisms ... though such procedures are not mandatory" (Section 6) and
caches tokens so users log in once (Section 7.5).  We emulate the common
shape of all of these — credentials in, expiring bearer token out —
without implementing each wire protocol, since nothing above this layer
depends on the scheme.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Credentials:
    """Opaque provider credentials (account id + secret)."""

    account_id: str
    secret: str = ""
    scheme: str = "oauth2"


@dataclass(frozen=True)
class AuthToken:
    """A bearer token with an expiry time (provider clock, seconds)."""

    token: str
    account_id: str
    expires_at: float = field(default=float("inf"))

    def valid_at(self, t: float) -> bool:
        """Whether the token is still usable at provider time ``t``."""
        return t < self.expires_at


def issue_token(
    credentials: Credentials,
    provider_secret: str,
    now: float = 0.0,
    ttl: float = float("inf"),
) -> AuthToken:
    """Deterministically derive a token for the given credentials.

    HMAC of the account over a provider-side secret — deterministic so
    simulations are reproducible, unforgeable without the provider
    secret so auth tests are meaningful.
    """
    mac = hmac.new(
        provider_secret.encode("utf-8"),
        f"{credentials.account_id}:{credentials.secret}".encode("utf-8"),
        hashlib.sha256,
    ).hexdigest()
    return AuthToken(token=mac, account_id=credentials.account_id,
                     expires_at=now + ttl)
