"""Cloud storage provider (CSP) substrate.

CYRUS deliberately uses only the five most basic cloud primitives —
authenticate, list, upload, download, delete (paper Section 3.1) — so
that any provider, down to a bare FTP server, can participate.  This
package defines that interface and three implementations:

* :class:`InMemoryCSP` — a dict-backed store for tests;
* :class:`LocalDirectoryCSP` — a directory on disk (a real, persistent
  provider usable outside simulations);
* :class:`SimulatedCSP` — an in-memory store dressed with a network
  link, quota, authentication, outage schedule, and the vendor
  file-handling quirks Table 2 documents (overwrite-by-name vs
  duplicate-on-upload).

:mod:`repro.csp.catalog` reproduces the paper's Table 2: the twenty
commercial CSPs with their protocols, auth schemes, measured RTTs and
derived throughputs.

:mod:`repro.csp.resilient` wraps any provider in the failure-handling
envelope (Section 5.5): per-operation deadlines, exponential backoff
with deterministic jitter, and a per-CSP circuit breaker feeding the
shared :class:`HealthRegistry`.
"""

from repro.csp.account import AuthToken, Credentials
from repro.csp.aio import AsyncCloudProvider, SyncProviderAdapter, as_async_provider
from repro.csp.base import BytesLike, CloudProvider, ObjectInfo
from repro.csp.catalog import CSPSpec, TABLE2, amazon_hosted, spec_by_name
from repro.csp.localfs import LocalDirectoryCSP
from repro.csp.memory import InMemoryCSP
from repro.csp.namespaced import NamespacedCSP, namespace_prefix
from repro.csp.resilient import (
    BreakerState,
    CircuitBreaker,
    CSPHealth,
    HealthEvent,
    HealthRegistry,
    ResilientProvider,
    RetryPolicy,
    wrap_resilient,
)
from repro.csp.simulated import AvailabilitySchedule, SimulatedCSP

__all__ = [
    "CloudProvider",
    "AsyncCloudProvider",
    "SyncProviderAdapter",
    "as_async_provider",
    "BytesLike",
    "ObjectInfo",
    "InMemoryCSP",
    "LocalDirectoryCSP",
    "NamespacedCSP",
    "namespace_prefix",
    "SimulatedCSP",
    "AvailabilitySchedule",
    "AuthToken",
    "Credentials",
    "CSPSpec",
    "TABLE2",
    "amazon_hosted",
    "spec_by_name",
    "BreakerState",
    "CircuitBreaker",
    "CSPHealth",
    "HealthEvent",
    "HealthRegistry",
    "ResilientProvider",
    "RetryPolicy",
    "wrap_resilient",
]
