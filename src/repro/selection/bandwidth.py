"""The bandwidth sub-problem, solved exactly.

For a *fixed* share assignment, the remaining optimisation over
bandwidths is

    minimise   y = max_c  L_c / beta_c
    subject to sum_c beta_c <= beta,   beta_c <= beta-bar_c

with per-CSP loads ``L_c``.  This has a closed form: y is feasible iff
``beta_c >= L_c / y`` fits under both cap types, i.e.

    y* = max( max_c L_c / beta-bar_c,  (sum_c L_c) / beta )

and ``beta_c = L_c / y*`` (idle CSPs get zero).  Algorithm 1's "fix the
bandwidths" step uses exactly this allocation, which is why the
alternation converges quickly.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import SelectionError


def optimal_bandwidth_allocation(
    loads: Mapping[str, float],
    link_caps: Mapping[str, float],
    client_cap: float,
) -> tuple[float, dict[str, float]]:
    """Optimal (y, beta) for fixed per-CSP loads.

    Args:
        loads: Bytes to fetch from each CSP (zero entries allowed).
        link_caps: Per-CSP bandwidth caps (bytes/s).
        client_cap: Client-wide cap shared by all CSPs.

    Returns:
        ``(y, betas)``: minimal bottleneck time and the bandwidth split
        achieving it.  ``y`` is 0 when all loads are zero.

    Raises:
        SelectionError: A CSP has positive load but zero capacity.
    """
    if client_cap <= 0:
        raise SelectionError("client_cap must be positive")
    total = 0.0
    worst_link = 0.0
    for csp, load in loads.items():
        if load < 0:
            raise SelectionError(f"negative load for {csp}")
        if load == 0:
            continue
        cap = link_caps.get(csp, 0.0)
        if cap <= 0:
            raise SelectionError(f"CSP {csp} has load {load} but no capacity")
        total += load
        worst_link = max(worst_link, load / cap)
    y = max(worst_link, total / client_cap)
    if y == 0.0:
        return 0.0, {csp: 0.0 for csp in loads}
    betas = {csp: (load / y if load > 0 else 0.0) for csp, load in loads.items()}
    return y, betas
