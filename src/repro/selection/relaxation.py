"""Fractional relaxations of the download-selection problem.

Two engines produce a fractional assignment ``d_{r,c}``:

* ``alternating`` — coordinate descent between the two exactly-solvable
  sub-problems: an LP in ``(d, y)`` for fixed bandwidths (scipy HiGHS)
  and the closed-form bandwidth allocation for fixed ``d``
  (:mod:`repro.selection.bandwidth`).  Converges in a few rounds.

* ``convexified`` — the paper's construction: substitute
  ``D_{r,c} = d_{r,c}^(1/2)``, over-estimate it with the closest linear
  function ``D-hat = 3^(1/4) d / 2 + 3^(-1/4) / 2`` and solve the
  resulting jointly convex program in ``(d, beta, y)`` with SLSQP.
  Because D-hat is an over-estimator, any feasible point of the
  convexified program is feasible for the true problem.

Both yield near-identical fractional solutions; the ablation benchmark
compares them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import optimize, sparse

from repro.errors import SelectionError
from repro.selection.bandwidth import optimal_bandwidth_allocation
from repro.selection.problem import DownloadProblem

#: Linear over-estimator coefficients for sqrt(d) on [0, 1] (paper §4.3).
DHAT_SLOPE = 3.0 ** 0.25 / 2.0
DHAT_INTERCEPT = 3.0 ** -0.25 / 2.0


@dataclass
class FractionalSolution:
    """A fractional assignment with its loads and bandwidth split."""

    d: dict[tuple[str, str], float]  # (chunk_id, csp) -> fraction in [0, 1]
    loads: dict[str, float]
    bandwidths: dict[str, float]
    y: float

    def chunk_fractions(self, chunk_id: str) -> dict[str, float]:
        """CSP -> fraction for one chunk."""
        return {c: v for (r, c), v in self.d.items() if r == chunk_id}


def _index_problem(problem: DownloadProblem, skip: set[str]):
    """Variable indexing for the unfixed chunks."""
    chunks = [c for c in problem.chunks if c.chunk_id not in skip]
    csps = problem.csps
    csp_index = {c: i for i, c in enumerate(csps)}
    var_index: dict[tuple[str, str], int] = {}
    for chunk in chunks:
        for csp in chunk.available:
            if problem.link_caps.get(csp, 0.0) > 0:
                var_index[(chunk.chunk_id, csp)] = len(var_index)
    return chunks, csps, csp_index, var_index


def lp_given_bandwidth(
    problem: DownloadProblem,
    bandwidths: dict[str, float],
    fixed_loads: dict[str, float] | None = None,
    fixed_chunks: set[str] | None = None,
) -> FractionalSolution:
    """LP over (d, y) with bandwidths held constant.

    ``fixed_loads`` are byte loads from already-integrally-assigned
    chunks (Algorithm 1's ``r < eta``); those chunks are listed in
    ``fixed_chunks`` and excluded from the variables.
    """
    fixed_loads = fixed_loads or {}
    fixed_chunks = fixed_chunks or set()
    chunks, csps, csp_index, var_index = _index_problem(problem, fixed_chunks)
    n_d = len(var_index)
    n_vars = n_d + 1  # + y
    y_col = n_d
    if not chunks:
        loads = {c: fixed_loads.get(c, 0.0) for c in csps}
        y, betas = optimal_bandwidth_allocation(
            loads, dict(problem.link_caps), problem.client_cap
        )
        return FractionalSolution(d={}, loads=loads, bandwidths=betas, y=y)

    cost = np.zeros(n_vars)
    cost[y_col] = 1.0

    rows, cols, vals = [], [], []
    b_ub = []
    row = 0
    for csp in csps:
        beta = bandwidths.get(csp, 0.0)
        members = [
            (var_index[(ch.chunk_id, csp)], ch.share_size)
            for ch in chunks
            if (ch.chunk_id, csp) in var_index
        ]
        if not members:
            continue
        if beta <= 0:
            # unusable this round: forbid by bounding those d at 0 below
            for col, _ in members:
                rows.append(row)
                cols.append(col)
                vals.append(1.0)
            b_ub.append(0.0)
            row += 1
            continue
        for col, size in members:
            rows.append(row)
            cols.append(col)
            vals.append(float(size))
        rows.append(row)
        cols.append(y_col)
        vals.append(-beta)
        b_ub.append(-fixed_loads.get(csp, 0.0))
        row += 1
    a_ub = sparse.coo_matrix((vals, (rows, cols)), shape=(row, n_vars))

    e_rows, e_cols, e_vals = [], [], []
    for i, chunk in enumerate(chunks):
        for csp in chunk.available:
            key = (chunk.chunk_id, csp)
            if key in var_index:
                e_rows.append(i)
                e_cols.append(var_index[key])
                e_vals.append(1.0)
    a_eq = sparse.coo_matrix((e_vals, (e_rows, e_cols)), shape=(len(chunks), n_vars))
    b_eq = np.full(len(chunks), float(problem.t))

    bounds = [(0.0, 1.0)] * n_d + [(0.0, None)]
    res = optimize.linprog(
        cost, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq, bounds=bounds,
        method="highs",
    )
    if not res.success:
        raise SelectionError(f"LP relaxation failed: {res.message}")
    d = {key: float(res.x[i]) for key, i in var_index.items()}
    loads = {c: fixed_loads.get(c, 0.0) for c in csps}
    for (chunk_id, csp), frac in d.items():
        size = next(
            ch.share_size for ch in chunks if ch.chunk_id == chunk_id
        )
        loads[csp] += size * frac
    y, betas = optimal_bandwidth_allocation(
        loads, dict(problem.link_caps), problem.client_cap
    )
    return FractionalSolution(d=d, loads=loads, bandwidths=betas, y=y)


def solve_fractional_alternating(
    problem: DownloadProblem,
    rounds: int = 3,
    fixed_loads: dict[str, float] | None = None,
    fixed_chunks: set[str] | None = None,
) -> FractionalSolution:
    """Alternate the LP and the closed-form bandwidth allocation."""
    caps = dict(problem.link_caps)
    total_cap = sum(caps.values())
    scale = min(1.0, problem.client_cap / total_cap) if total_cap > 0 else 1.0
    bandwidths = {c: caps[c] * scale for c in caps}
    best: FractionalSolution | None = None
    for _ in range(max(1, rounds)):
        sol = lp_given_bandwidth(problem, bandwidths, fixed_loads, fixed_chunks)
        if best is None or sol.y < best.y - 1e-12:
            best = sol
        # keep idle CSPs usable next round with a small bandwidth floor
        floor = {c: 0.01 * caps[c] for c in caps}
        bandwidths = {
            c: max(sol.bandwidths.get(c, 0.0), floor[c]) for c in caps
        }
    assert best is not None
    return best


def solve_fractional_convexified(
    problem: DownloadProblem,
    fixed_loads: dict[str, float] | None = None,
    fixed_chunks: set[str] | None = None,
) -> FractionalSolution:
    """The paper's convexified program, solved with SLSQP.

    Variables are ``d`` (per usable chunk/CSP pair), ``beta`` (per CSP)
    and ``y``; constraints use the linear over-estimator
    ``D-hat(d) = 3^(1/4) d / 2 + 3^(-1/4) / 2`` so that
    ``sum_r b_r D-hat^2 <= y beta_c`` implies the true constraint.
    """
    fixed_loads = fixed_loads or {}
    fixed_chunks = fixed_chunks or set()
    chunks, csps, csp_index, var_index = _index_problem(problem, fixed_chunks)
    if not chunks:
        return lp_given_bandwidth(problem, dict(problem.link_caps),
                                  fixed_loads, fixed_chunks)
    n_d = len(var_index)
    n_c = len(csps)
    n_vars = n_d + n_c + 1
    y_col = n_d + n_c
    sizes = {ch.chunk_id: ch.share_size for ch in chunks}

    def beta_col(csp: str) -> int:
        return n_d + csp_index[csp]

    def objective(x: np.ndarray) -> float:
        return x[y_col]

    def objective_grad(x: np.ndarray) -> np.ndarray:
        g = np.zeros(n_vars)
        g[y_col] = 1.0
        return g

    constraints = []
    # per-CSP: y * beta_c - sum_r b_r Dhat(d_rc)^2 - F_c >= 0
    for csp in csps:
        members = [
            (i, sizes[chunk_id])
            for (chunk_id, c2), i in var_index.items()
            if c2 == csp
        ]
        f_c = fixed_loads.get(csp, 0.0)
        if not members and f_c == 0.0:
            continue
        bc = beta_col(csp)

        def make(members=members, bc=bc, f_c=f_c):
            def fun(x: np.ndarray) -> float:
                acc = x[y_col] * x[bc] - f_c
                for i, size in members:
                    dhat = DHAT_SLOPE * x[i] + DHAT_INTERCEPT
                    acc -= size * dhat * dhat
                return acc

            return fun

        constraints.append({"type": "ineq", "fun": make()})
    # client cap: beta - sum beta_c >= 0
    constraints.append(
        {
            "type": "ineq",
            "fun": lambda x: problem.client_cap - x[n_d : n_d + n_c].sum(),
        }
    )
    # per-chunk: sum_c d_rc == t
    for chunk in chunks:
        idxs = [
            var_index[(chunk.chunk_id, c)]
            for c in chunk.available
            if (chunk.chunk_id, c) in var_index
        ]

        def make_eq(idxs=idxs):
            return lambda x: x[idxs].sum() - problem.t

        constraints.append({"type": "eq", "fun": make_eq()})

    bounds = (
        [(0.0, 1.0)] * n_d
        + [(0.0, problem.link_caps.get(c, 0.0)) for c in csps]
        + [(0.0, None)]
    )
    x0 = np.zeros(n_vars)
    for chunk in chunks:
        usable = [
            c for c in chunk.available if (chunk.chunk_id, c) in var_index
        ]
        for c in usable:
            x0[var_index[(chunk.chunk_id, c)]] = problem.t / len(usable)
    total_cap = sum(problem.link_caps.get(c, 0.0) for c in csps)
    scale = min(1.0, problem.client_cap / total_cap) if total_cap else 1.0
    for c in csps:
        x0[beta_col(c)] = problem.link_caps.get(c, 0.0) * scale
    x0[y_col] = 1.0
    res = optimize.minimize(
        objective,
        x0,
        jac=objective_grad,
        bounds=bounds,
        constraints=constraints,
        method="SLSQP",
        options={"maxiter": 200, "ftol": 1e-9},
    )
    if not res.success and res.status != 8:  # 8: iteration limit; accept best
        raise SelectionError(f"convexified solve failed: {res.message}")
    x = res.x
    d = {key: float(np.clip(x[i], 0.0, 1.0)) for key, i in var_index.items()}
    loads = {c: fixed_loads.get(c, 0.0) for c in csps}
    for (chunk_id, csp), frac in d.items():
        loads[csp] += sizes[chunk_id] * frac
    y, betas = optimal_bandwidth_allocation(
        loads, dict(problem.link_caps), problem.client_cap
    )
    return FractionalSolution(d=d, loads=loads, bandwidths=betas, y=y)
