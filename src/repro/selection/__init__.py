"""Downlink CSP selection (paper Section 4.3, Algorithm 1).

To download a file, the client must fetch ``t`` of the ``n`` shares of
every chunk; which CSPs it fetches from determines the parallel
completion time.  This package defines the optimisation problem
(:mod:`problem`), the exact bandwidth sub-problem
(:mod:`bandwidth`), the LP relaxation (:mod:`relaxation`), the paper's
online convexify-fix-round algorithm (:class:`CyrusSelector`), and the
random / round-robin / greedy / brute-force baselines the evaluation
compares against.
"""

from repro.selection.bandwidth import optimal_bandwidth_allocation
from repro.selection.baselines import (
    BruteForceSelector,
    GreedySelector,
    RandomSelector,
    RoundRobinSelector,
)
from repro.selection.cyrus import CyrusSelector
from repro.selection.problem import (
    ChunkDownload,
    DownloadProblem,
    SelectionPlan,
    evaluate_plan,
    restrict_to_live,
)

__all__ = [
    "ChunkDownload",
    "DownloadProblem",
    "SelectionPlan",
    "evaluate_plan",
    "restrict_to_live",
    "optimal_bandwidth_allocation",
    "CyrusSelector",
    "RandomSelector",
    "RoundRobinSelector",
    "GreedySelector",
    "BruteForceSelector",
]
