"""The download-selection problem and plan containers.

Paper Section 4.3, equations (5)-(7): choose indicator variables
``d_{r,c}`` (download chunk r's share from CSP c) and per-CSP bandwidths
``beta_c`` to minimise the bottleneck completion time

    y = max_c ( sum_r b_r d_{r,c} / beta_c )

subject to exactly ``t`` selections per chunk, availability
(``d <= u``), per-CSP bandwidth caps, and the shared client cap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Collection, Mapping, Sequence

from repro.errors import SelectionError
from repro.selection.bandwidth import optimal_bandwidth_allocation


@dataclass(frozen=True)
class ChunkDownload:
    """One chunk to fetch: its share size b_r and where shares live."""

    chunk_id: str
    share_size: int
    available: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.share_size < 0:
            raise ValueError("share_size must be non-negative")
        if len(set(self.available)) != len(self.available):
            raise ValueError(f"duplicate CSPs in availability for {self.chunk_id}")


@dataclass(frozen=True)
class DownloadProblem:
    """A batch of chunks to download with t shares each.

    Attributes:
        chunks: Chunks in download order.
        t: Shares required per chunk.
        link_caps: Per-CSP achievable bandwidth (beta-bar, bytes/s).
        client_cap: Client-wide download bandwidth (beta, bytes/s).
    """

    chunks: tuple[ChunkDownload, ...]
    t: int
    link_caps: Mapping[str, float]
    client_cap: float

    def __post_init__(self) -> None:
        if self.t < 1:
            raise SelectionError(f"t must be >= 1, got {self.t}")
        if self.client_cap <= 0:
            raise SelectionError("client_cap must be positive")
        for chunk in self.chunks:
            usable = [
                c
                for c in chunk.available
                if self.link_caps.get(c, 0.0) > 0
            ]
            if len(usable) < self.t:
                raise SelectionError(
                    f"chunk {chunk.chunk_id}: only {len(usable)} usable CSPs "
                    f"({usable}), need t={self.t}"
                )

    @property
    def csps(self) -> list[str]:
        """All CSPs referenced by any chunk (sorted)."""
        seen: set[str] = set()
        for chunk in self.chunks:
            seen.update(chunk.available)
        return sorted(seen)


@dataclass
class SelectionPlan:
    """A concrete choice of t CSPs per chunk, plus bandwidth split.

    ``bottleneck_time`` is the model's predicted completion time (the
    objective y); the flow simulator reports the realised time.
    """

    assignments: dict[str, tuple[str, ...]]
    bandwidths: dict[str, float] = field(default_factory=dict)
    bottleneck_time: float = 0.0

    def loads(self, problem: DownloadProblem) -> dict[str, float]:
        """Per-CSP bytes downloaded under this plan."""
        out: dict[str, float] = {c: 0.0 for c in problem.csps}
        for chunk in problem.chunks:
            for csp in self.assignments[chunk.chunk_id]:
                out[csp] += chunk.share_size
        return out


def validate_plan(problem: DownloadProblem, plan: SelectionPlan) -> None:
    """Raise :class:`SelectionError` unless the plan is feasible."""
    for chunk in problem.chunks:
        chosen = plan.assignments.get(chunk.chunk_id)
        if chosen is None:
            raise SelectionError(f"plan misses chunk {chunk.chunk_id}")
        if len(chosen) != problem.t or len(set(chosen)) != problem.t:
            raise SelectionError(
                f"chunk {chunk.chunk_id}: need {problem.t} distinct CSPs, "
                f"got {chosen}"
            )
        bad = set(chosen) - set(chunk.available)
        if bad:
            raise SelectionError(
                f"chunk {chunk.chunk_id}: CSPs {sorted(bad)} hold no share"
            )


def evaluate_plan(
    problem: DownloadProblem, plan: SelectionPlan
) -> tuple[float, dict[str, float]]:
    """Objective value of a plan with *optimal* bandwidth allocation.

    Returns ``(y, bandwidths)`` — the bottleneck time achieved when the
    client splits its capacity optimally for the plan's loads, and that
    split.  Also stores both on the plan.
    """
    validate_plan(problem, plan)
    loads = plan.loads(problem)
    y, betas = optimal_bandwidth_allocation(
        loads, dict(problem.link_caps), problem.client_cap
    )
    plan.bottleneck_time = y
    plan.bandwidths = betas
    return y, betas


def restrict_to_live(
    problem: DownloadProblem, live: Collection[str]
) -> DownloadProblem:
    """Health-aware candidate filtering (Section 5.5 failure handling).

    Returns a copy of the problem with every CSP outside ``live``
    removed from chunk availability and from the link caps — breaker-
    open providers must not be selected even if the metadata still
    lists shares there.  Raises :class:`SelectionError` (via the
    problem's own validation) when filtering leaves some chunk with
    fewer than ``t`` candidates.
    """
    live = set(live)
    if set(problem.csps) <= live:
        return problem
    chunks = tuple(
        ChunkDownload(
            chunk_id=chunk.chunk_id,
            share_size=chunk.share_size,
            available=tuple(c for c in chunk.available if c in live),
        )
        for chunk in problem.chunks
    )
    caps = {c: cap for c, cap in problem.link_caps.items() if c in live}
    return DownloadProblem(
        chunks=chunks, t=problem.t, link_caps=caps,
        client_cap=problem.client_cap,
    )
