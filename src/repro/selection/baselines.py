"""Baseline download selectors (paper Section 7.2 and 7.3).

* :class:`RandomSelector` — "chooses CSPs randomly with uniform
  probability";
* :class:`RoundRobinSelector` — the paper's "heuristic algorithm ... a
  round-robin scheme";
* :class:`GreedySelector` — DepSky's policy: "a greedy algorithm that
  always downloads shares from the fastest CSPs";
* :class:`BruteForceSelector` — exhaustive search over all C(t, n)^R
  joint selections, feasible only for tiny instances (the paper skips
  it for this reason, footnote 12); tests use it to verify that
  :class:`repro.selection.cyrus.CyrusSelector` is near-optimal.
"""

from __future__ import annotations

import itertools
import math
import random

from repro.errors import SelectionError
from repro.selection.bandwidth import optimal_bandwidth_allocation
from repro.selection.problem import DownloadProblem, SelectionPlan, evaluate_plan


def _usable(problem: DownloadProblem, chunk) -> list[str]:
    out = [c for c in chunk.available if problem.link_caps.get(c, 0.0) > 0]
    if len(out) < problem.t:
        raise SelectionError(
            f"chunk {chunk.chunk_id}: {len(out)} usable CSPs < t={problem.t}"
        )
    return sorted(out)


class RandomSelector:
    """Uniform random choice of t CSPs per chunk."""

    name = "random"

    def __init__(self, seed: int = 0):
        self.seed = seed

    def select(self, problem: DownloadProblem) -> SelectionPlan:
        rng = random.Random(self.seed)
        assignments = {
            chunk.chunk_id: tuple(rng.sample(_usable(problem, chunk), problem.t))
            for chunk in problem.chunks
        }
        plan = SelectionPlan(assignments=assignments)
        evaluate_plan(problem, plan)
        return plan


class RoundRobinSelector:
    """Cycle through the CSP list, taking the next t that hold a share."""

    name = "round-robin"

    def select(self, problem: DownloadProblem) -> SelectionPlan:
        order = problem.csps
        if not order:
            raise SelectionError("no CSPs in problem")
        cursor = 0
        assignments: dict[str, tuple[str, ...]] = {}
        for chunk in problem.chunks:
            usable = set(_usable(problem, chunk))
            chosen: list[str] = []
            scanned = 0
            while len(chosen) < problem.t and scanned < 2 * len(order):
                csp = order[cursor % len(order)]
                cursor += 1
                scanned += 1
                if csp in usable and csp not in chosen:
                    chosen.append(csp)
            if len(chosen) < problem.t:  # pragma: no cover - guarded above
                raise SelectionError(f"round-robin starved on {chunk.chunk_id}")
            assignments[chunk.chunk_id] = tuple(chosen)
        plan = SelectionPlan(assignments=assignments)
        evaluate_plan(problem, plan)
        return plan


class GreedySelector:
    """Always take the t fastest CSPs holding a share (DepSky policy)."""

    name = "greedy-fastest"

    def select(self, problem: DownloadProblem) -> SelectionPlan:
        assignments: dict[str, tuple[str, ...]] = {}
        for chunk in problem.chunks:
            usable = _usable(problem, chunk)
            fastest = sorted(
                usable, key=lambda c: (-problem.link_caps[c], c)
            )[: problem.t]
            assignments[chunk.chunk_id] = tuple(fastest)
        plan = SelectionPlan(assignments=assignments)
        evaluate_plan(problem, plan)
        return plan


class BruteForceSelector:
    """Exact minimiser by exhaustive enumeration (tiny instances only)."""

    name = "brute-force"

    def __init__(self, combo_limit: int = 200_000):
        self.combo_limit = combo_limit

    def select(self, problem: DownloadProblem) -> SelectionPlan:
        per_chunk: list[list[tuple[str, ...]]] = []
        total = 1
        for chunk in problem.chunks:
            combos = list(
                itertools.combinations(_usable(problem, chunk), problem.t)
            )
            per_chunk.append(combos)
            total *= len(combos)
            if total > self.combo_limit:
                raise SelectionError(
                    f"brute force infeasible: > {self.combo_limit} joint "
                    f"selections"
                )
        best_y = math.inf
        best: dict[str, tuple[str, ...]] | None = None
        caps = dict(problem.link_caps)
        for joint in itertools.product(*per_chunk):
            loads: dict[str, float] = {}
            for chunk, combo in zip(problem.chunks, joint):
                for c in combo:
                    loads[c] = loads.get(c, 0.0) + chunk.share_size
            y, _ = optimal_bandwidth_allocation(loads, caps, problem.client_cap)
            if y < best_y - 1e-12:
                best_y = y
                best = {
                    chunk.chunk_id: combo
                    for chunk, combo in zip(problem.chunks, joint)
                }
        assert best is not None
        plan = SelectionPlan(assignments=best)
        evaluate_plan(problem, plan)
        return plan
