"""CYRUS's download selector — the paper's Algorithm 1.

For each chunk in order (the *online* property: chunk 1's CSPs are
decided — and its downloads can start — before later chunks are even
considered):

1. solve the fractional relaxation with earlier chunks' selections
   fixed (paper line 2);
2. fix the bandwidths from that solution (line 3; here the closed-form
   optimal allocation);
3. choose an integral t-subset for the current chunk minimising the
   predicted bottleneck given fixed loads plus the fractional remainder
   (lines 4-5: the single-chunk integer program — C variables — solved
   exactly by enumeration, or greedily for very wide problems);
4. fix the selection (line 6) and continue.

Re-solving the relaxation for *every* chunk is the paper's letter;
``resolve_every`` lets large batches amortise it with negligible loss
(the ablation benchmark quantifies this).
"""

from __future__ import annotations

import itertools
import math

from repro.errors import SelectionError
from repro.selection.bandwidth import optimal_bandwidth_allocation
from repro.selection.problem import (
    ChunkDownload,
    DownloadProblem,
    SelectionPlan,
    evaluate_plan,
)
from repro.selection.relaxation import (
    FractionalSolution,
    solve_fractional_alternating,
    solve_fractional_convexified,
)


class CyrusSelector:
    """Algorithm 1: online convexify-relax-round CSP selection.

    Args:
        resolve_every: Re-solve the fractional relaxation after this
            many chunk fixings (1 = the paper's exact schedule).
        enumeration_limit: Max t-subsets to enumerate exactly per chunk;
            wider choices fall back to greedy marginal-cost picking.
        relaxation: ``"alternating"`` (default) or ``"convexified"``
            (the paper's D-hat construction via SLSQP).
        order: ``"given"`` keeps the caller's chunk order (the paper's
            r = 1..R); ``"largest-first"`` fixes big chunks first, which
            slightly helps very heterogeneous batches.
    """

    name = "cyrus"

    def __init__(
        self,
        resolve_every: int = 1,
        enumeration_limit: int = 512,
        relaxation: str = "alternating",
        order: str = "given",
    ):
        if resolve_every < 1:
            raise ValueError("resolve_every must be >= 1")
        if relaxation not in ("alternating", "convexified"):
            raise ValueError(f"unknown relaxation {relaxation!r}")
        if order not in ("given", "largest-first"):
            raise ValueError(f"unknown order {order!r}")
        self.resolve_every = resolve_every
        self.enumeration_limit = enumeration_limit
        self.relaxation = relaxation
        self.order = order

    # ------------------------------------------------------------------

    def _solve_fractional(
        self,
        problem: DownloadProblem,
        fixed_loads: dict[str, float],
        fixed_chunks: set[str],
    ) -> FractionalSolution:
        if self.relaxation == "convexified":
            return solve_fractional_convexified(
                problem, fixed_loads=fixed_loads, fixed_chunks=fixed_chunks
            )
        return solve_fractional_alternating(
            problem, fixed_loads=fixed_loads, fixed_chunks=fixed_chunks
        )

    def _pick_integral(
        self,
        chunk: ChunkDownload,
        t: int,
        base_loads: dict[str, float],
        link_caps: dict[str, float],
        client_cap: float,
    ) -> tuple[str, ...]:
        """Best t-subset for one chunk against background loads."""
        usable = [c for c in chunk.available if link_caps.get(c, 0.0) > 0]
        if len(usable) < t:
            raise SelectionError(
                f"chunk {chunk.chunk_id}: {len(usable)} usable CSPs < t={t}"
            )
        n_combos = math.comb(len(usable), t)
        if n_combos <= self.enumeration_limit:
            best_y = math.inf
            best: tuple[str, ...] | None = None
            for combo in itertools.combinations(sorted(usable), t):
                trial = dict(base_loads)
                for c in combo:
                    trial[c] = trial.get(c, 0.0) + chunk.share_size
                y, _ = optimal_bandwidth_allocation(trial, link_caps, client_cap)
                if y < best_y - 1e-12:
                    best_y = y
                    best = combo
            assert best is not None
            return best
        # greedy: repeatedly add the CSP with least marginal bottleneck
        chosen: list[str] = []
        trial = dict(base_loads)
        remaining = sorted(usable)
        for _ in range(t):
            best_y = math.inf
            best_c = remaining[0]
            for c in remaining:
                probe = dict(trial)
                probe[c] = probe.get(c, 0.0) + chunk.share_size
                y, _ = optimal_bandwidth_allocation(probe, link_caps, client_cap)
                if y < best_y - 1e-12:
                    best_y = y
                    best_c = c
            chosen.append(best_c)
            remaining.remove(best_c)
            trial[best_c] = trial.get(best_c, 0.0) + chunk.share_size
        return tuple(chosen)

    # ------------------------------------------------------------------

    def select(self, problem: DownloadProblem) -> SelectionPlan:
        """Assign t CSPs to every chunk; returns an evaluated plan."""
        link_caps = dict(problem.link_caps)
        chunk_order = list(problem.chunks)
        if self.order == "largest-first":
            chunk_order.sort(key=lambda ch: -ch.share_size)
        assignments: dict[str, tuple[str, ...]] = {}
        fixed_loads: dict[str, float] = {c: 0.0 for c in problem.csps}
        fixed_chunks: set[str] = set()
        fractional: FractionalSolution | None = None
        since_resolve = self.resolve_every  # force solve on first chunk
        for chunk in chunk_order:
            if since_resolve >= self.resolve_every:
                fractional = self._solve_fractional(
                    problem, fixed_loads, fixed_chunks
                )
                since_resolve = 0
            assert fractional is not None
            # background: fixed loads + fractional loads of *other* chunks
            # (clamped: LP round-off can leave ~1e-9 negative residues)
            base = dict(fractional.loads)
            for csp, frac in fractional.chunk_fractions(chunk.chunk_id).items():
                base[csp] = max(0.0, base[csp] - chunk.share_size * frac)
            for csp in base:
                base[csp] = max(0.0, base[csp])
            chosen = self._pick_integral(
                chunk, problem.t, base, link_caps, problem.client_cap
            )
            assignments[chunk.chunk_id] = chosen
            fixed_chunks.add(chunk.chunk_id)
            for c in chosen:
                fixed_loads[c] = fixed_loads.get(c, 0.0) + chunk.share_size
            # fold the decision into the working fractional solution so
            # later chunks (before the next re-solve) see it
            for csp, frac in list(
                fractional.chunk_fractions(chunk.chunk_id).items()
            ):
                fractional.loads[csp] = max(
                    0.0, fractional.loads[csp] - chunk.share_size * frac
                )
                fractional.d.pop((chunk.chunk_id, csp), None)
            for c in chosen:
                fractional.loads[c] = fractional.loads.get(c, 0.0) + chunk.share_size
            since_resolve += 1
        plan = SelectionPlan(assignments=assignments)
        evaluate_plan(problem, plan)
        return plan
