"""Deprecation shims for pre-façade import paths.

The blessed public surface is the top-level :mod:`repro` package (plus
the canonical implementation modules, e.g. ``repro.core.client``).
Older package-level re-export paths keep working through PEP 562 module
``__getattr__`` hooks built by :func:`deprecated_getattr`: each access
resolves the name from its canonical module and emits a
:class:`DeprecationWarning` attributed to the importing module.

CI runs the tier-1 suite with ``DeprecationWarning`` escalated to an
error for warnings attributed to ``repro`` modules, so internal code
can never reintroduce a deprecated import path; external callers (and
the tests that pin the shims) merely see the warning.
"""

from __future__ import annotations

import importlib
import warnings
from typing import Callable, Mapping


def deprecated_getattr(
    package: str, moved: Mapping[str, str]
) -> Callable[[str], object]:
    """Build a module ``__getattr__`` resolving ``moved`` names lazily.

    Args:
        package: The shim module's ``__name__``.
        moved: ``exported name -> canonical module`` mapping.

    The resolved object is *not* cached in the shim's namespace, so
    every fresh ``from <package> import <name>`` warns again — imports
    are rare and the repetition is what makes the deprecation visible.
    """

    def __getattr__(name: str) -> object:
        target = moved.get(name)
        if target is None:
            raise AttributeError(
                f"module {package!r} has no attribute {name!r}"
            )
        warnings.warn(
            f"importing {name!r} from {package!r} is deprecated; use "
            f"'from {target} import {name}' or the top-level 'repro' "
            f"facade",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(importlib.import_module(target), name)

    return __getattr__
