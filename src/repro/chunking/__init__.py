"""Content-defined chunking (paper Section 5.1).

CYRUS cuts files into chunks at content-dependent boundaries so that a
local edit only changes the chunks whose bytes changed; unchanged chunks
keep their identity and are deduplicated.  This package provides:

* :class:`RabinFingerprint` — the classic GF(2) polynomial rolling hash
  the paper cites, as a readable reference implementation;
* :class:`ContentDefinedChunker` — the production chunker with a fully
  vectorised rolling-hash engine (the reference engine is selectable for
  cross-checking);
* :class:`FixedSizeChunker` — the baseline the paper contrasts against.
"""

from repro.chunking.chunk import Chunk
from repro.chunking.cdc import ContentDefinedChunker
from repro.chunking.fixed import FixedSizeChunker
from repro.chunking.rabin import RabinFingerprint

__all__ = [
    "Chunk",
    "ContentDefinedChunker",
    "FixedSizeChunker",
    "RabinFingerprint",
]
