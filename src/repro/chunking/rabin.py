"""Rabin fingerprinting by random polynomials (reference implementation).

This is the GF(2) polynomial rolling hash from Rabin (1981) that the
paper cites for chunk-boundary detection.  The fingerprint of a byte
window is the residue of the window, read as a polynomial over GF(2),
modulo an irreducible polynomial.  Appending a byte is a shift-and-
reduce; expiring the oldest byte subtracts its (precomputed)
contribution, so the window slides in O(1) per byte.

This implementation favours clarity over speed and is used for tests and
small inputs; :class:`repro.chunking.cdc.ContentDefinedChunker` uses a
vectorised engine for bulk data.
"""

from __future__ import annotations

#: A degree-53 irreducible polynomial over GF(2) (LLNL rabin-karp tables
#: use similar degrees; any irreducible polynomial works).
DEFAULT_POLY = 0x3DA3358B4DC173

#: Default sliding-window width in bytes.
DEFAULT_WINDOW = 16


def _poly_degree(poly: int) -> int:
    return poly.bit_length() - 1


def _poly_mod(value: int, poly: int, degree: int) -> int:
    """Reduce ``value`` modulo ``poly`` over GF(2)."""
    while value.bit_length() - 1 >= degree:
        value ^= poly << (value.bit_length() - 1 - degree)
    return value


class RabinFingerprint:
    """A sliding-window Rabin fingerprint.

    Args:
        poly: Irreducible GF(2) polynomial used as the modulus.
        window: Window width in bytes.
    """

    def __init__(self, poly: int = DEFAULT_POLY, window: int = DEFAULT_WINDOW):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if poly.bit_length() < 2:
            raise ValueError("polynomial must have degree >= 1")
        self.poly = poly
        self.window = window
        self._degree = _poly_degree(poly)
        # shift_table[b] = fingerprint contribution of byte b once it has
        # been shifted window bytes to the left (i.e. what to XOR out when
        # the byte leaves the window)
        self._out_table = [
            _poly_mod(b << (8 * window), poly, self._degree) for b in range(256)
        ]
        # push_table[hi] = reduction of the top 8 bits after a left shift
        self._push_table = [
            _poly_mod(hi << self._degree, poly, self._degree) for hi in range(256)
        ]
        self.reset()

    def reset(self) -> None:
        """Clear the window and fingerprint."""
        self._fp = 0
        self._buf: list[int] = []
        self._pos = 0

    @property
    def value(self) -> int:
        """Current fingerprint of the bytes in the window."""
        return self._fp

    def push(self, byte: int) -> int:
        """Slide the window one byte forward; returns the new fingerprint."""
        if not 0 <= byte < 256:
            raise ValueError(f"byte out of range: {byte}")
        old = -1
        if len(self._buf) == self.window:
            old = self._buf[self._pos]
            self._buf[self._pos] = byte
            self._pos = (self._pos + 1) % self.window
        else:
            self._buf.append(byte)
        # append: fp = (fp << 8 | byte) mod poly
        if self._degree >= 8:
            hi = (self._fp >> (self._degree - 8)) & 0xFF
            self._fp = ((self._fp << 8) & ((1 << self._degree) - 1)) | byte
            self._fp ^= self._push_table[hi]
        else:
            self._fp = _poly_mod((self._fp << 8) | byte, self.poly, self._degree)
        # expire: after the shift the departing byte sits at x^(8*window)
        if old >= 0:
            self._fp ^= self._out_table[old]
        return self._fp

    def update(self, data: bytes) -> int:
        """Push every byte of ``data``; returns the final fingerprint."""
        for b in data:
            self.push(b)
        return self._fp

    def fingerprint(self, data: bytes) -> int:
        """Fingerprint of the last ``window`` bytes of ``data`` from scratch."""
        self.reset()
        return self.update(data)
