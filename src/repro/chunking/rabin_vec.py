"""Vectorised Rabin fingerprinting over GF(2).

Computes the same degree-``d`` polynomial fingerprints as the
byte-at-a-time :class:`repro.chunking.rabin.RabinFingerprint`, but for
every window position of a buffer at once.  The trick is linearity over
GF(2): the fingerprint of the window ending at byte ``i`` is

    fp[i] = XOR_{k=0..w-1}  (data[i-k] * x^(8k))  mod  P

so with one precomputed 256-entry table per window offset,

    T_k[b] = (b << 8k) mod P,

the whole fingerprint array is ``w`` numpy gathers XORed together —
no rolling state, no per-byte Python loop.  Output values are
bit-identical to the reference pusher's, which is what lets the
``"rabin"`` chunker engine reproduce the reference engine's cut points
exactly (the reference only emits candidates once the window is full,
i.e. at positions where this formula is the complete fingerprint).
"""

from __future__ import annotations

import numpy as np

from repro.chunking.rabin import DEFAULT_POLY, DEFAULT_WINDOW, _poly_mod

__all__ = ["VectorRabin"]


class VectorRabin:
    """Batch Rabin fingerprints for every full window of a buffer.

    Args:
        poly: Irreducible GF(2) polynomial (degree <= 63 so residues fit
            in uint64).
        window: Window width in bytes.
    """

    def __init__(self, poly: int = DEFAULT_POLY, window: int = DEFAULT_WINDOW):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        degree = poly.bit_length() - 1
        if degree < 1:
            raise ValueError("polynomial must have degree >= 1")
        if degree > 63:
            raise ValueError(f"polynomial degree {degree} exceeds uint64 residues")
        self.poly = poly
        self.window = window
        self.degree = degree
        # tables[k][b] = contribution of byte value b at window offset k
        # (offset 0 = newest byte)
        tables = np.empty((window, 256), dtype=np.uint64)
        for k in range(window):
            shift = 8 * k
            for b in range(256):
                tables[k, b] = _poly_mod(b << shift, poly, degree)
        self._tables = tables
        #: Truncated table cache for :meth:`masked_fingerprints`, keyed by mask.
        self._masked_tables: dict[int, np.ndarray] = {}

    def fingerprints(self, buf) -> np.ndarray:
        """Fingerprints of every full window of ``buf``.

        Args:
            buf: uint8 ndarray (or bytes-like) of length n.

        Returns:
            uint64 array of length ``max(0, n - window + 1)`` where entry
            ``j`` is the fingerprint of ``buf[j : j + window]`` — the
            window *ending* at index ``j + window - 1``.
        """
        data = np.frombuffer(buf, dtype=np.uint8) if not isinstance(
            buf, np.ndarray
        ) else buf
        n = data.size
        w = self.window
        if n < w:
            return np.empty(0, dtype=np.uint64)
        acc = self._tables[0][data[w - 1 :]]
        # fancy indexing already copied; accumulate the older offsets in place
        for k in range(1, w):
            acc ^= self._tables[k][data[w - 1 - k : n - k]]
        return acc

    def masked_fingerprints(self, buf, mask: int) -> np.ndarray:
        """``fingerprints(buf) & mask`` without computing full residues.

        XOR is bitwise, so ``(XOR_k T_k[.]) & mask == XOR_k (T_k[.] & mask)``
        — the chunker's boundary test (``fp & mask == target``) only needs
        the low ``mask`` bits, which lets the gather run in the smallest
        integer dtype that holds them (uint8 for the common avg-size
        masks) instead of uint64: an ~8x cut in memory traffic.
        """
        tables = self._masked_tables.get(mask)
        if tables is None:
            if mask < 1 << 8:
                dtype = np.uint8
            elif mask < 1 << 16:
                dtype = np.uint16
            elif mask < 1 << 32:
                dtype = np.uint32
            else:
                dtype = np.uint64
            tables = (self._tables & np.uint64(mask)).astype(dtype)
            self._masked_tables[mask] = tables
        data = np.frombuffer(buf, dtype=np.uint8) if not isinstance(
            buf, np.ndarray
        ) else buf
        n = data.size
        w = self.window
        if n < w:
            return np.empty(0, dtype=tables.dtype)
        acc = tables[0][data[w - 1 :]]
        for k in range(1, w):
            acc ^= tables[k][data[w - 1 - k : n - k]]
        return acc
