"""Chunk container.

A chunk is identified by the SHA-1 of its content (the paper's ChunkMap
``Id``), which is what makes deduplication work: two files containing
the same bytes at chunk granularity produce chunks with equal ids.

``data`` is any read-only bytes-like object: the chunkers slice one
``memoryview`` over the source buffer instead of copying every chunk
out, so a file flows from the chunker through the erasure encoder
without per-chunk ``bytes`` copies.  Equality still compares content,
and ``to_bytes()`` materialises an owning copy when one is needed
(e.g. to pickle the chunk across a process boundary).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.hashing import sha1_hex


@dataclass(frozen=True)
class Chunk:
    """A contiguous piece of a file.

    Attributes:
        id: Hex SHA-1 of ``data``.
        data: Chunk content (bytes-like; often a memoryview of the file).
        offset: Byte offset of the chunk within its source file.
    """

    id: str
    # hash=False: memoryview payloads are unhashable; the content hash in
    # ``id`` already identifies the chunk for sets/dicts
    data: bytes = field(repr=False, hash=False)
    offset: int

    @classmethod
    def from_data(cls, data, offset: int = 0) -> "Chunk":
        """Build a chunk, computing its content id (accepts bytes-like)."""
        return cls(id=sha1_hex(data), data=data, offset=offset)

    @property
    def size(self) -> int:
        """Chunk length in bytes."""
        return len(self.data)

    def to_bytes(self) -> bytes:
        """The content as an owning ``bytes`` object (copies if needed)."""
        return self.data if type(self.data) is bytes else bytes(self.data)
