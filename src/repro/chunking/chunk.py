"""Chunk container.

A chunk is identified by the SHA-1 of its content (the paper's ChunkMap
``Id``), which is what makes deduplication work: two files containing
the same bytes at chunk granularity produce chunks with equal ids.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.hashing import sha1_hex


@dataclass(frozen=True)
class Chunk:
    """A contiguous piece of a file.

    Attributes:
        id: Hex SHA-1 of ``data``.
        data: Chunk content.
        offset: Byte offset of the chunk within its source file.
    """

    id: str
    data: bytes = field(repr=False)
    offset: int

    @classmethod
    def from_data(cls, data: bytes, offset: int = 0) -> "Chunk":
        """Build a chunk, computing its content id."""
        return cls(id=sha1_hex(data), data=data, offset=offset)

    @property
    def size(self) -> int:
        """Chunk length in bytes."""
        return len(self.data)
