"""Fixed-size chunking baseline.

The paper contrasts content-defined chunking against fixed-size
chunking, where an insertion early in a file shifts every later chunk
boundary and defeats deduplication.  This baseline exists so the
ablation benchmark can measure that effect.
"""

from __future__ import annotations

from repro.chunking.chunk import Chunk
from repro.errors import ChunkingError


class FixedSizeChunker:
    """Cut byte strings into equal-size chunks (last one may be short)."""

    def __init__(self, chunk_size: int = 8 * 1024):
        if chunk_size < 1:
            raise ChunkingError(f"chunk_size must be >= 1, got {chunk_size}")
        self.chunk_size = chunk_size

    def boundaries(self, data: bytes) -> list[int]:
        """Cut points (exclusive chunk ends), ending at ``len(data)``."""
        if not data:
            return []
        cuts = list(range(self.chunk_size, len(data), self.chunk_size))
        cuts.append(len(data))
        return cuts

    def chunk_bytes(self, data) -> list[Chunk]:
        """Split ``data`` into fixed-size content-addressed chunks.

        Chunk payloads are zero-copy ``memoryview`` slices of ``data``.
        """
        view = memoryview(data)
        chunks: list[Chunk] = []
        prev = 0
        for cut in self.boundaries(data):
            chunks.append(Chunk.from_data(view[prev:cut], offset=prev))
            prev = cut
        return chunks
