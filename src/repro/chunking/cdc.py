"""Content-defined chunker.

Boundaries are declared where a rolling hash of the trailing ``window``
bytes satisfies ``hash mod M == K`` (paper Section 5.1), then filtered to
respect minimum and maximum chunk sizes.  Because the hash depends only
on window *content*, an insertion early in a file shifts boundaries only
until the hash re-synchronises — downstream chunks keep their identity,
which is what makes deduplication effective.

Two interchangeable engines compute the rolling hash:

* ``"vectorized"`` (default) — a multiplicative rolling hash evaluated
  with numpy prefix sums.  The multiplier is odd and therefore
  invertible modulo 2^32, which lets the hash of the window ending at
  byte ``i`` be written as ``a^i * (S[i+1] - S[i-w+1])`` for a single
  prefix-sum array ``S`` — one pass over the data, no per-byte loop.
* ``"rabin"`` — the same GF(2) Rabin fingerprint as the reference,
  computed in batch by :class:`repro.chunking.rabin_vec.VectorRabin`
  (one table gather per window offset).  Produces **bit-identical cut
  points** to ``"reference"`` at vectorised speed.
* ``"reference"`` — the classic GF(2) Rabin fingerprint
  (:class:`repro.chunking.rabin.RabinFingerprint`), byte-at-a-time.
  The oracle the ``"rabin"`` engine is verified against.

``"vectorized"`` uses a different hash function, so its boundaries
differ from the Rabin pair, but all engines are deterministic and
content-defined; tests verify the structural properties for each.

``chunk_bytes`` slices chunks as ``memoryview`` windows over the input
buffer rather than copying each chunk out — the zero-copy entry of the
chunk → encode → upload hot path.
"""

from __future__ import annotations

import functools

import numpy as np

from repro.chunking.chunk import Chunk
from repro.chunking.rabin import RabinFingerprint
from repro.chunking.rabin_vec import VectorRabin
from repro.errors import ChunkingError

#: Odd 32-bit multiplier (Knuth); odd => invertible mod 2^32.
_MULTIPLIER = 0x9E3779B1
_MULT_INV = pow(_MULTIPLIER, -1, 1 << 32)
_U32 = np.uint32

#: Block size for the vectorised engine (bounds peak memory at ~10x block).
_BLOCK = 8 * 1024 * 1024


@functools.lru_cache(maxsize=8)
def _byte_table(seed: int) -> np.ndarray:
    """Random odd uint32 per byte value; decorrelates the hash input.

    Cached and frozen: the table is a pure function of the seed and is
    only ever read, so every chunker instance in the process (there is
    one per client session) shares one copy.
    """
    rng = np.random.default_rng(seed)
    table = (
        rng.integers(0, 1 << 31, size=256, dtype=np.uint32) * _U32(2) + _U32(1)
    )
    table.setflags(write=False)
    return table


@functools.lru_cache(maxsize=8)
def _power_series(base: int, count: int) -> np.ndarray:
    """[base^0, base^1, ..., base^(count-1)] modulo 2^32.

    Cached and frozen: at the default block size each series is a
    ~32 MB array, which must be shared across chunker instances — a
    thousand concurrent sessions would otherwise each pay for their own.
    """
    out = np.empty(count, dtype=np.uint32)
    out[0] = _U32(1)
    if count > 1:
        with np.errstate(over="ignore"):
            np.multiply.accumulate(
                np.full(count - 1, _U32(base & 0xFFFFFFFF), dtype=np.uint32),
                out=out[1:],
            )
    out.setflags(write=False)
    return out


def select_boundaries(
    candidates: list[int], length: int, min_size: int, max_size: int
) -> list[int]:
    """Filter candidate cut points to respect min/max chunk sizes.

    ``candidates`` are ascending byte positions (exclusive chunk ends).
    Returns the final ascending cut list, always ending at ``length``.
    Cuts closer than ``min_size`` to the previous cut are dropped; spans
    longer than ``max_size`` are force-cut at ``max_size``.
    """
    if length == 0:
        return []
    cuts: list[int] = []
    last = 0
    for c in candidates:
        if c <= last or c >= length:
            continue
        while c - last > max_size:
            last += max_size
            cuts.append(last)
        if c - last < min_size:
            continue
        cuts.append(c)
        last = c
    while length - last > max_size:
        last += max_size
        cuts.append(last)
    cuts.append(length)
    return cuts


class ContentDefinedChunker:
    """Cut byte strings into variable-size, content-addressed chunks.

    Args:
        min_size: Smallest chunk the filter will emit (except the final
            chunk of a file, which may be shorter).
        avg_size: Target average chunk size; must be a power of two (it
            becomes the modulus M of the boundary test).
        max_size: Largest chunk; longer runs are force-cut.
        window: Rolling-hash window width in bytes.
        engine: ``"vectorized"``, ``"rabin"``, or ``"reference"``.
        seed: Seed for the byte-mixing table (vectorized engine) — all
            clients of one CYRUS cloud must share it for dedup to work.
    """

    def __init__(
        self,
        min_size: int = 2 * 1024,
        avg_size: int = 8 * 1024,
        max_size: int = 64 * 1024,
        window: int = 16,
        engine: str = "vectorized",
        seed: int = 0x5EED,
    ):
        if avg_size & (avg_size - 1) or avg_size <= 0:
            raise ChunkingError(f"avg_size must be a power of two, got {avg_size}")
        if avg_size > 1 << 24:
            raise ChunkingError(f"avg_size above 2^24 unsupported, got {avg_size}")
        if not 0 < min_size <= avg_size <= max_size:
            raise ChunkingError(
                f"need 0 < min_size <= avg_size <= max_size, got "
                f"({min_size}, {avg_size}, {max_size})"
            )
        if window < 2:
            raise ChunkingError(f"window must be >= 2, got {window}")
        if engine not in ("vectorized", "rabin", "reference"):
            raise ChunkingError(f"unknown engine {engine!r}")
        self.min_size = min_size
        self.avg_size = avg_size
        self.max_size = max_size
        self.window = window
        self.engine = engine
        self.seed = seed
        self._mask = avg_size - 1
        self._target = self._mask  # K in "hash mod M == K"
        self._bits = avg_size.bit_length() - 1  # log2(M)
        if engine == "vectorized":
            self._table = _byte_table(seed)
            # data-independent power tables, shared by every block
            max_block = _BLOCK + window
            self._pows = _power_series(_MULTIPLIER, max_block)
            self._inv_pows = _power_series(_MULT_INV, max_block)
        elif engine == "rabin":
            self._vrabin = VectorRabin(window=window)
        else:
            self._rabin = RabinFingerprint(window=window)

    # ------------------------------------------------------------------
    # candidate generation
    # ------------------------------------------------------------------

    def _candidates_vectorized(self, data: bytes) -> list[int]:
        w = self.window
        n = len(data)
        if n < w:
            return []
        out: list[int] = []
        # boundary test uses the top log2(M) bits of the 32-bit hash
        shift = _U32(32 - self._bits)
        target = _U32(self._target)
        full = np.frombuffer(data, dtype=np.uint8)
        start = 0
        with np.errstate(over="ignore"):
            while start < n:
                end = min(n, start + _BLOCK)
                lo = max(0, start - (w - 1))  # carry window overlap
                buf = full[lo:end]  # zero-copy view of the source buffer
                m = buf.size
                vals = self._table[buf]  # uint32 gather
                # S[k] = sum_{j<k} vals[j] * a^-j (block-relative, mod 2^32)
                s = np.zeros(m + 1, dtype=np.uint32)
                np.add.accumulate(vals * self._inv_pows[:m], out=s[1:])
                # hash of window ending at i: a^i * (S[i+1] - S[i-w+1]);
                # pure slice arithmetic — no gathers
                h = self._pows[w - 1 : m] * (s[w:] - s[: m - w + 1])
                hits = np.nonzero((h >> shift) == target)[0]
                # hit k is a window ending at block byte (k + w - 1);
                # the cut point is one past it, in absolute coordinates
                positions = hits + (w + lo)
                if lo < start:
                    positions = positions[positions > start]
                out.extend(positions.tolist())
                start = end
        return out

    def _candidates_rabin(self, data) -> list[int]:
        """Rabin candidates in batch — bit-identical to the reference engine.

        Blocked over window end positions so the uint64 fingerprint array
        stays bounded regardless of input size.
        """
        w = self.window
        full = np.frombuffer(data, dtype=np.uint8)
        n = full.size
        if n < w:
            return []
        out: list[int] = []
        for lo in range(0, n - w + 1, _BLOCK):
            hi = min(n - w + 1, lo + _BLOCK)
            # windows starting at lo..hi-1 need bytes [lo, hi + w - 1)
            fps = self._vrabin.masked_fingerprints(full[lo : hi + w - 1], self._mask)
            target = fps.dtype.type(self._target)
            hits = np.nonzero(fps == target)[0]
            # hit j is the window ending at absolute byte lo + j + w - 1;
            # the cut point is one past it, as in the reference engine
            out.extend((hits + (lo + w)).tolist())
        return out

    def _candidates_reference(self, data: bytes) -> list[int]:
        rabin = self._rabin
        rabin.reset()
        out: list[int] = []
        mask = self._mask
        target = self._target
        w = self.window
        for i, byte in enumerate(data):
            fp = rabin.push(byte)
            if i >= w - 1 and (fp & mask) == target:
                out.append(i + 1)
        return out

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def boundaries(self, data: bytes) -> list[int]:
        """Cut points (exclusive chunk ends) for ``data``, ending at len."""
        if self.engine == "vectorized":
            candidates = self._candidates_vectorized(data)
        elif self.engine == "rabin":
            candidates = self._candidates_rabin(data)
        else:
            candidates = self._candidates_reference(data)
        return select_boundaries(candidates, len(data), self.min_size, self.max_size)

    def chunk_bytes(self, data) -> list[Chunk]:
        """Split ``data`` into content-addressed chunks.

        Chunk payloads are zero-copy ``memoryview`` slices of ``data``;
        the caller must keep the source buffer alive while the chunks
        are in use (and may call ``Chunk.to_bytes()`` to detach one).
        """
        cuts = self.boundaries(data)
        view = memoryview(data)
        chunks: list[Chunk] = []
        prev = 0
        for cut in cuts:
            chunks.append(Chunk.from_data(view[prev:cut], offset=prev))
            prev = cut
        return chunks
