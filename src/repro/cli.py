"""Command-line interface: the open-source counterpart of the prototype UI.

The paper's prototype ships a GUI (Figure 11) listing connected CSP
accounts, stored files, and per-file history.  This CLI exposes the
same surface over persistent on-disk providers
(:class:`repro.csp.LocalDirectoryCSP` — stand-ins for mounted cloud
drives or private storage servers):

    cyrus init  --store ~/.cyrus --key K --csp name=path [...]
    cyrus put   <file> [--as NAME]
    cyrus get   <name> [-o OUT] [--version N]
    cyrus ls    [PREFIX]
    cyrus history <name>
    cyrus rm    <name>
    cyrus conflicts
    cyrus resolve
    cyrus status
    cyrus recover
    cyrus scrub [--budget N] [--no-repair] [--delete-orphans]
    cyrus debts [--json]
    cyrus repair [--budget N]
    cyrus stats [--json]
    cyrus bench [--quick] [--out-dir DIR] [--gate BASELINE]
    cyrus fleet [--tenants N] [--seed S] [--out FLEET_report.json] [--gate]
    cyrus trace (put|get|sync) [...] --out trace.json
    cyrus add-csp name=path
    cyrus remove-csp name

State (provider list, key, coding parameters, client id) lives in a
JSON file under the store directory; all file data and metadata live at
the providers, so ``cyrus init`` against existing provider directories
recovers everything — the Table 3 ``recover()`` call.
"""

from __future__ import annotations

import argparse
import json
import sys
import uuid
from pathlib import Path

from repro.core.client import CyrusClient
from repro.core.config import CyrusConfig
from repro.csp.localfs import LocalDirectoryCSP
from repro.errors import CyrusError

CONFIG_NAME = "cyrus.json"


class CLIError(Exception):
    """User-facing CLI failure (bad arguments, missing store)."""


def _parse_csp_spec(spec: str) -> tuple[str, str]:
    name, sep, path = spec.partition("=")
    if not sep or not name or not path:
        raise CLIError(f"--csp must be name=path, got {spec!r}")
    return name, path


def _store_path(args) -> Path:
    return Path(args.store).expanduser()


def load_settings(store: Path) -> dict:
    path = store / CONFIG_NAME
    if not path.exists():
        raise CLIError(
            f"no CYRUS store at {store} (run `cyrus init` first)"
        )
    return json.loads(path.read_text())


#: Clients built during the current command; ``main`` closes them on the
#: way out, so every command shares one teardown path (encode pool,
#: engine threads/loop) without per-command boilerplate.
_active_clients: list[CyrusClient] = []


def build_client(store: Path) -> CyrusClient:
    settings = load_settings(store)
    providers = [
        LocalDirectoryCSP(name, Path(path))
        for name, path in settings["providers"].items()
    ]
    config = CyrusConfig(
        key=settings["key"],
        t=settings["t"],
        n=settings["n"],
        chunk_min=settings["chunk_min"],
        chunk_avg=settings["chunk_avg"],
        chunk_max=settings["chunk_max"],
        parallelism=settings.get("parallelism", 1),
        max_inflight_per_csp=settings.get("max_inflight_per_csp"),
        max_inflight_total=settings.get("max_inflight_total"),
        encode_workers=settings.get("encode_workers", 0),
        transfer_backend=settings.get("transfer_backend", "thread"),
    )
    from repro.recovery import IntentJournal
    from repro.redundancy import DebtLedger

    client = CyrusClient.create(
        providers, config, client_id=settings["client_id"],
        journal=IntentJournal(store / "journal.jsonl"),
        debt_ledger=DebtLedger(store / "debts.jsonl"),
    )
    # local metadata copy (Section 3.2): start from the cached tree so
    # the sync only fetches nodes published since the last invocation
    cache_path = store / "tree-cache.json"
    try:
        client.load_local_state(cache_path)
    except CyrusError:
        pass  # stale/corrupt cache: fall back to a full sync
    # startup replay: finish or undo whatever a crashed invocation left
    report = client.run_recovery()
    if report is not None and not report.clean:
        print(f"recovery: replayed {report.intents_total} interrupted "
              f"operation(s) ({report.rolled_forward} rolled forward, "
              f"{report.rolled_back} rolled back, "
              f"{report.shares_deleted} orphaned share(s) deleted)")
    client.sync()
    client.save_local_state(cache_path)
    _active_clients.append(client)
    return client


def save_settings(store: Path, settings: dict) -> None:
    store.mkdir(parents=True, exist_ok=True)
    (store / CONFIG_NAME).write_text(json.dumps(settings, indent=2))


# ---------------------------------------------------------------------------
# commands
# ---------------------------------------------------------------------------


def cmd_init(args) -> int:
    store = _store_path(args)
    if (store / CONFIG_NAME).exists() and not args.force:
        raise CLIError(f"store already exists at {store} (use --force)")
    csps = dict(_parse_csp_spec(s) for s in args.csp)
    if len(csps) < args.n:
        raise CLIError(
            f"need at least n={args.n} providers, got {len(csps)}"
        )
    settings = {
        "key": args.key,
        "t": args.t,
        "n": args.n,
        "chunk_min": args.chunk_min,
        "chunk_avg": args.chunk_avg,
        "chunk_max": args.chunk_max,
        "parallelism": args.parallelism,
        "transfer_backend": args.transfer_backend,
        "encode_workers": args.encode_workers,
        "max_inflight_per_csp": args.max_inflight_per_csp,
        "max_inflight_total": None,
        "client_id": args.client_id or f"cli-{uuid.uuid4().hex[:8]}",
        "providers": {
            name: str(Path(path).expanduser().resolve())
            for name, path in csps.items()
        },
    }
    save_settings(store, settings)
    client = build_client(store)
    existing = client.list_files(sync_first=False)
    print(f"initialised CYRUS store at {store} with {len(csps)} providers "
          f"(t={args.t}, n={args.n})")
    if existing:
        print(f"recovered {len(existing)} existing files from the providers")
    return 0


def cmd_put(args) -> int:
    client = build_client(_store_path(args))
    source = Path(args.file)
    data = source.read_bytes()
    name = args.as_name or source.name
    report = client.put(name, data, sync_first=False)
    if report.unchanged:
        print(f"{name}: unchanged (already at this version)")
    else:
        print(f"{name}: stored {report.node.size:,} bytes as "
              f"{report.new_chunks} new + {report.dedup_chunks} deduplicated "
              f"chunks ({report.bytes_uploaded:,} bytes uploaded)")
    _warn_degraded(report)
    return 0


def _warn_degraded(report) -> None:
    """Surface degraded writes (< n shares placed) from an upload report."""
    degraded = getattr(report, "degraded_chunks", ())
    if degraded:
        print(f"warning: {len(degraded)} chunk(s) stored with fewer than n "
              f"shares (debt recorded; run `cyrus repair` or let the sync "
              f"daemon re-disperse them)")


def cmd_get(args) -> int:
    client = build_client(_store_path(args))
    report = client.get(args.name, version=args.version, sync_first=False)
    out = Path(args.output) if args.output else Path(Path(args.name).name)
    out.write_bytes(report.data)
    suffix = f" (version -{args.version})" if args.version else ""
    print(f"{args.name}{suffix}: {len(report.data):,} bytes -> {out}")
    if report.conflicts:
        print(f"warning: {len(report.conflicts)} unresolved conflict(s) — "
              f"run `cyrus conflicts`")
    if report.migrations:
        print(f"note: migrated {len(report.migrations)} shares to healthy "
              f"providers")
    return 0


def cmd_ls(args) -> int:
    client = build_client(_store_path(args))
    entries = client.list_files(args.prefix or "", sync_first=False)
    if not entries:
        print("(no files)")
        return 0
    width = max(len(e.name) for e in entries)
    for entry in entries:
        versions = len(client.history(entry.name))
        print(f"{entry.name:<{width}}  {entry.size:>12,} bytes  "
              f"{versions} version(s)")
    return 0


def cmd_history(args) -> int:
    client = build_client(_store_path(args))
    chain = client.history(args.name)
    for back, node in enumerate(chain):
        marker = "deleted" if node.deleted else f"{node.size:,} bytes"
        head = " (current)" if back == 0 else ""
        print(f"  -{back}: {node.node_id[:12]}  {marker}  "
              f"by {node.client_id}{head}")
    return 0


def cmd_rm(args) -> int:
    client = build_client(_store_path(args))
    client.delete(args.name, sync_first=False)
    print(f"{args.name}: deleted (history preserved; "
          f"`cyrus get {args.name}` still restores it)")
    return 0


def cmd_conflicts(args) -> int:
    client = build_client(_store_path(args))
    conflicts = client.conflicts()
    if not conflicts:
        print("no conflicts")
        return 0
    for conflict in conflicts:
        print(f"{conflict.kind}: {conflict.name!r} "
              f"({len(conflict.node_ids)} concurrent versions)")
    return 1


def cmd_resolve(args) -> int:
    client = build_client(_store_path(args))
    created = client.resolve_conflicts()
    if created:
        for name in created:
            print(f"preserved losing version as {name!r}")
    else:
        print("nothing to resolve")
    return 0


def cmd_status(args) -> int:
    store = _store_path(args)
    settings = load_settings(store)
    client = build_client(store)
    files = client.list_files(sync_first=False)
    stats = client.storage_stats()
    print(f"store: {store}")
    print(f"coding: t={settings['t']}, n={settings['n']}")
    print(f"files: {len(files)} "
          f"({stats['logical_bytes']:,} logical bytes, "
          f"{stats['unique_chunk_bytes']:,} after dedup, "
          f"{stats['stored_share_bytes']:,} stored with redundancy)")
    print("providers:")
    for name, path in settings["providers"].items():
        root = Path(path)
        if root.exists():
            objects = [p for p in root.iterdir() if p.is_file()]
            stored = sum(p.stat().st_size for p in objects)
            print(f"  {name:<16} {len(objects):>5} objects  "
                  f"{stored:>12,} bytes  {path}")
        else:
            print(f"  {name:<16} MISSING  {path}")
    conflicts = client.conflicts()
    if conflicts:
        print(f"unresolved conflicts: {len(conflicts)}")
    return 0


def cmd_recover(args) -> int:
    """Replay the intent journal (build_client already ran the replay;
    this command surfaces what it did)."""
    client = build_client(_store_path(args))
    report = client.last_recovery
    if report is None or report.clean:
        print("journal clean: no interrupted operations to recover")
        return 0
    print(f"recovered {report.intents_total} interrupted operation(s): "
          f"{report.rolled_forward} rolled forward, "
          f"{report.rolled_back} rolled back, "
          f"{report.meta_republished} metadata node(s) re-published, "
          f"{report.shares_deleted} orphaned share(s) deleted")
    for action in report.actions:
        print(f"  {action}")
    if report.incomplete_remaining:
        print(f"warning: {report.incomplete_remaining} intent(s) could not "
              f"be repaired (provider unreachable?); run `cyrus recover` "
              f"again once providers are back")
        return 1
    return 0


def cmd_scrub(args) -> int:
    client = build_client(_store_path(args))
    report = client.scrub(
        budget_shares=args.budget,
        repair=not args.no_repair,
        delete_orphans=args.delete_orphans,
    )
    print(f"scrub: {report.chunks_scanned}/{report.chunks_total} chunks, "
          f"{report.shares_verified} share(s) verified, "
          f"{report.shares_missing} missing, "
          f"{report.shares_corrupt} corrupt, "
          f"{report.shares_repaired} repaired")
    if report.meta_nodes_scanned:
        print(f"scrub metadata: {report.meta_nodes_scanned} node(s), "
              f"{report.meta_shares_verified} share(s) verified, "
              f"{report.meta_shares_missing} missing, "
              f"{report.meta_shares_corrupt} corrupt, "
              f"{report.meta_debts_recorded} repair debt(s) recorded")
    if report.placements_adopted:
        print(f"adopted {report.placements_adopted} untracked share(s) "
              f"into the chunk table")
    if report.orphans:
        verb = "deleted" if args.delete_orphans else "found"
        print(f"orphan share objects {verb}: {len(report.orphans)}")
        for csp_id, name in report.orphans:
            print(f"  {csp_id}: {name}")
        if not args.delete_orphans:
            print("  (re-run with --delete-orphans to remove them; make "
                  "sure no other client is mid-upload)")
    if report.unreachable_csps:
        print(f"unreachable providers skipped: "
              f"{', '.join(report.unreachable_csps)}")
    if report.budget_exhausted:
        print(f"budget exhausted at cursor {report.cursor}; re-run to "
              f"continue")
    if report.unrecoverable_chunks:
        print(f"ERROR: {len(report.unrecoverable_chunks)} chunk(s) have no "
              f"verifying t-subset of shares:")
        for chunk_id in report.unrecoverable_chunks:
            print(f"  {chunk_id}")
        return 1
    return 0


def cmd_prune(args) -> int:
    client = build_client(_store_path(args))
    report = client.prune_history(args.name, keep_versions=args.keep)
    print(f"{args.name}: pruned {report.nodes_deleted} old version(s), "
          f"kept {report.versions_kept}")
    return 0


def cmd_gc(args) -> int:
    client = build_client(_store_path(args))
    report = client.collect_garbage()
    print(f"garbage collection: {report.chunks_deleted} chunks "
          f"({report.shares_deleted} shares, "
          f"{report.bytes_reclaimed:,} bytes) reclaimed")
    return 0


def cmd_import(args) -> int:
    client = build_client(_store_path(args))
    report = client.import_object(args.provider, args.object,
                                  target_name=args.as_name)
    print(f"imported {args.object!r} from {args.provider} as "
          f"{report.node.name!r} ({report.node.size:,} bytes)")
    return 0


def cmd_sync_dir(args) -> int:
    """Two-way sync of a local directory with the cloud (Section 5.4).

    Local changes are detected mtime-first then by hash (the paper's
    local half of the sync service) and uploaded; remote files missing
    or outdated locally are downloaded.  Conflicts are reported, not
    resolved.
    """
    from repro.core.sync import LocalChangeDetector
    from repro.util.hashing import sha1_hex

    client = build_client(_store_path(args))
    root = Path(args.directory).expanduser()
    root.mkdir(parents=True, exist_ok=True)

    local: dict[str, tuple[float, bytes]] = {}
    for path in sorted(root.rglob("*")):
        if path.is_file():
            rel = path.relative_to(root).as_posix()
            local[rel] = (path.stat().st_mtime, path.read_bytes())

    uploaded = downloaded = 0
    remote_names = {e.name for e in client.list_files(sync_first=False)}

    # push: every local file whose content differs from the cloud head
    for name, (_mtime, content) in local.items():
        if name in remote_names:
            head = client.tree.latest(name)
            if head.file_id == sha1_hex(content):
                continue
        report = client.put(name, content, sync_first=False)
        if not report.unchanged:
            uploaded += 1
            degraded = len(report.degraded_chunks)
            note = (f"  [{degraded} degraded chunk(s), debt recorded]"
                    if degraded else "")
            print(f"  up   {name} ({len(content):,} bytes){note}")

    # pull: every remote file absent locally (or tombstoned remotely)
    for entry in client.list_files(sync_first=False):
        target = root / entry.name
        if entry.name in local:
            continue
        report = client.get(entry.name, sync_first=False)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_bytes(report.data)
        downloaded += 1
        print(f"  down {entry.name} ({len(report.data):,} bytes)")

    conflicts = client.conflicts()
    print(f"sync-dir: {uploaded} uploaded, {downloaded} downloaded"
          + (f", {len(conflicts)} conflict(s) — run `cyrus resolve`"
             if conflicts else ""))
    return 0


def cmd_bench(args) -> int:
    from repro.bench.gate import check_reports, load_baseline
    from repro.bench.harness import run_bench

    out_dir = Path(args.out_dir).expanduser()
    out_dir.mkdir(parents=True, exist_ok=True)
    mode = "quick" if args.quick else "full"
    print(f"running {mode} bench (codec + e2e) ...")
    reports = run_bench(quick=args.quick, out_dir=out_dir)
    for kind in sorted(reports):
        metrics = reports[kind]["metrics"]
        print(f"{kind} (BENCH_{kind}.json):")
        for name in sorted(metrics):
            print(f"  {name}: {metrics[name]:.3f}")
    print(f"reports written to {out_dir}")
    if args.gate:
        baseline = load_baseline(args.gate)
        result = check_reports(reports, baseline, tolerance=args.tolerance)
        print(result.describe())
        return 0 if result.passed else 1
    return 0


def cmd_fleet(args) -> int:
    """Run the multi-tenant fleet simulation and write FLEET_report.json.

    Unlike the other commands this touches no on-disk store: the fleet
    is simulated end-to-end (shared netsim links or in-memory CSPs) from
    one seed, so the same invocation always yields the same report.
    """
    from repro.fleet import fleet_gate, run_fleet, write_fleet_report
    from repro.fleet.harness import FleetTopology
    from repro.workloads.fleet import FleetWorkloadSpec

    spec = FleetWorkloadSpec(
        tenants=args.tenants,
        files_per_tenant=args.files_per_tenant,
        ops_per_tenant=args.ops_per_tenant,
        zipf_s=args.zipf_s,
        arrival_rate=args.arrival_rate,
        quota_bytes=args.quota_bytes,
    )
    topology = FleetTopology(
        csps=args.csps,
        meta_groups=args.meta_groups,
        engine=args.engine,
    )
    print(f"fleet: {spec.tenants} tenants x {spec.ops_per_tenant} ops over "
          f"{topology.csps} {topology.engine} CSPs "
          f"({topology.meta_groups} metadata groups, seed {args.seed}) ...")
    result = run_fleet(spec, topology, seed=args.seed)
    out = Path(args.out)
    write_fleet_report(result.report, out)
    fleet = result.report["fleet"]
    sync = fleet["sync_latency"]
    print(f"converged: {fleet['converged_tenants']}/{len(result.tenants)} "
          f"tenants, {fleet['namespace_collisions']} namespace collision(s)")
    print(f"sync latency: p50={sync['p50']:.4f}s p99={sync['p99']:.4f}s "
          f"({sync['count']:.0f} puts, {fleet['sim_time']:.1f}s simulated)")
    print(f"load balance: byte skew {fleet['byte_skew']:.3f}, "
          f"op skew {fleet['op_skew']:.3f} across "
          f"{len(fleet['per_csp_bytes'])} CSPs")
    print(f"report written to {out}")
    if args.gate:
        violations = fleet_gate(result.report, max_skew=args.max_skew)
        if violations:
            print("fleet gate FAILED:")
            for violation in violations:
                print(f"  {violation}")
            return 1
        print(f"fleet gate passed (skew < {args.max_skew})")
    return 0


def cmd_stats(args) -> int:
    """Observability snapshot: op counts, bytes per CSP, health events.

    The metrics cover this invocation's traffic (the sync performed by
    ``build_client`` plus nothing else), so the numbers show what one
    sync actually cost — useful for spotting a provider that is eating
    retries.
    """
    client = build_client(_store_path(args))
    snap = client.obs.snapshot()
    if args.json:
        print(snap.to_json())
        return 0
    ops_by_csp = snap.counter_by("cyrus_ops_total", "csp")
    up = snap.counter_by("cyrus_transfer_bytes_total", "csp", direction="up")
    down = snap.counter_by("cyrus_transfer_bytes_total", "csp",
                           direction="down")
    failures = snap.counter_by("cyrus_op_failures_total", "csp")
    print("per-provider traffic (this invocation's sync):")
    for csp in sorted(ops_by_csp):
        print(f"  {csp:<16} {ops_by_csp[csp]:>6.0f} ops  "
              f"{up.get(csp, 0):>12,.0f} B up  "
              f"{down.get(csp, 0):>12,.0f} B down  "
              f"{failures.get(csp, 0):>4.0f} failures")
    retries = snap.counter_total("cyrus_share_retries_total")
    meta_retries = snap.counter_total("cyrus_meta_retries_total")
    if retries or meta_retries:
        print(f"retries: {retries:.0f} share, {meta_retries:.0f} metadata")
    events = snap.counter_by("cyrus_health_events_total", "kind")
    if events:
        print("health events: " + ", ".join(
            f"{kind}={count:.0f}" for kind, count in sorted(events.items())
        ))
    dispatched = snap.counter_by("cyrus_pool_dispatch_total", "csp")
    if dispatched:
        peaks = snap.gauges.get("cyrus_pool_inflight_peak", {})
        peak_by_csp = {dict(k).get("csp"): v for k, v in peaks.items()}
        total_peak = peak_by_csp.pop("*", 0)
        parallelism = getattr(client.engine, "parallelism", 1)
        print(f"transfer pool: parallelism={parallelism}, "
              f"peak inflight={total_peak:.0f}, "
              f"cancelled={snap.counter_total('cyrus_pool_cancelled_total'):.0f}")
        for csp in sorted(dispatched):
            print(f"  {csp:<16} {dispatched[csp]:>6.0f} dispatched  "
                  f"peak inflight {peak_by_csp.get(csp, 0):>3.0f}")
    degraded = snap.counter_total("cyrus_upload_degraded_chunks_total")
    corrupt = snap.counter_by("cyrus_corrupt_shares_total", "csp")
    open_debts = (len(client.debt_ledger)
                  if client.debt_ledger is not None else 0)
    if degraded or corrupt or open_debts:
        print(f"redundancy: {open_debts} open debt(s), "
              f"{degraded:.0f} degraded chunk write(s) this invocation")
        for csp, count in sorted(corrupt.items()):
            print(f"  {csp:<16} {count:>6.0f} corrupt share(s) detected")
    meta_debts = (sum(1 for e in client.debt_ledger.open_debts()
                      if e.kind == "meta")
                  if client.debt_ledger is not None else 0)
    meta_corrupt = snap.counter_by("cyrus_metadata_corrupt_shares_total",
                                   "csp")
    meta_pub_fail = snap.counter_total("cyrus_metadata_publish_failures_total")
    print(f"metadata health: {meta_debts} open repair debt(s), "
          f"{sum(meta_corrupt.values()):.0f} corrupt share(s), "
          f"{meta_pub_fail:.0f} publish failure(s) this invocation")
    for csp, count in sorted(meta_corrupt.items()):
        print(f"  {csp:<16} {count:>6.0f} corrupt metadata share(s)")
    stats = client.storage_stats()
    print(f"stored: {stats['stored_share_bytes']:,} bytes across "
          f"{len(stats['per_csp_bytes'])} providers")
    return 0


def cmd_debts(args) -> int:
    """List open redundancy debts (chunks stored with fewer than n
    shares, awaiting re-dispersal)."""
    client = build_client(_store_path(args))
    ledger = client.debt_ledger
    debts = ledger.open_debts() if ledger is not None else []
    if args.json:
        print(json.dumps([
            {
                "debt_id": d.debt_id,
                "chunk_id": d.chunk_id,
                "kind": d.kind,
                "missing": list(d.missing),
                "failed_csps": list(d.failed_csps),
                "attempts": d.attempts,
            }
            for d in debts
        ], indent=2))
        return 0
    if not debts:
        print("no open redundancy debts: every chunk has its full n shares")
        return 0
    print(f"{len(debts)} open debt(s):")
    for d in debts:
        suspects = ", ".join(d.failed_csps) or "-"
        what = "metadata node" if d.kind == "meta" else "chunk"
        print(f"  {what} {d.chunk_id[:12]}  missing shares "
              f"{list(d.missing)}  suspects: {suspects}  "
              f"attempts: {d.attempts}")
    print("run `cyrus repair` to re-disperse the missing shares")
    return 1


def cmd_repair(args) -> int:
    """Drain the debt ledger: rebuild missing shares onto healthy
    providers and retire the debts."""
    client = build_client(_store_path(args))
    if client.debt_ledger is None or not len(client.debt_ledger):
        print("no open redundancy debts: nothing to repair")
        return 0
    report = client.repair_debts(budget_shares=args.budget)
    print(f"repair: {report.debts_retired}/{report.debts_seen} debt(s) "
          f"retired, {report.shares_rebuilt} share(s) re-dispersed "
          f"({report.transfers_used} transfer(s) used)")
    if report.debts_deferred:
        print(f"  {report.debts_deferred} debt(s) deferred (backoff not "
              f"elapsed yet)")
    if report.budget_exhausted:
        print(f"  budget exhausted; re-run to continue")
    if report.unrecoverable_chunks:
        print(f"ERROR: {len(report.unrecoverable_chunks)} chunk(s) have no "
              f"verifying t-subset of shares:")
        for chunk_id in report.unrecoverable_chunks:
            print(f"  {chunk_id}")
        return 1
    return 0 if report.drained else 1


def cmd_trace(args) -> int:
    """Run one operation under tracing and dump a Chrome-trace file.

    Open the output in ``chrome://tracing`` (or Perfetto): each provider
    gets its own lane, so parallel share transfers render as the
    paper's Figure 14/17 timelines.
    """
    client = build_client(_store_path(args))
    if args.traced_op == "put":
        source = Path(args.file)
        client.put(args.as_name or source.name, source.read_bytes(),
                   sync_first=False)
    elif args.traced_op == "get":
        client.get(args.name, sync_first=False)
    else:  # sync
        client.sync()
    out = Path(args.out)
    out.write_text(client.obs.tracer.to_chrome_json())
    timeline = client.obs.timeline()
    spans = len(client.obs.tracer.all_spans())
    print(f"wrote {spans} spans to {out} (chrome://tracing)")
    per_csp = timeline.per_csp_bytes()
    if per_csp:
        for csp, nbytes in per_csp.items():
            print(f"  {csp:<16} {nbytes:>12,} bytes")
        print(timeline.render_ascii())
    return 0


def cmd_add_csp(args) -> int:
    store = _store_path(args)
    settings = load_settings(store)
    name, path = _parse_csp_spec(args.csp)
    if name in settings["providers"]:
        raise CLIError(f"provider {name!r} already attached")
    resolved = str(Path(path).expanduser().resolve())
    client = build_client(store)
    client.add_csp(LocalDirectoryCSP(name, Path(resolved)))
    settings["providers"][name] = resolved
    save_settings(store, settings)
    print(f"attached provider {name!r}; metadata replicated onto it")
    return 0


def cmd_remove_csp(args) -> int:
    store = _store_path(args)
    settings = load_settings(store)
    if args.name not in settings["providers"]:
        raise CLIError(f"unknown provider {args.name!r}")
    if len(settings["providers"]) - 1 < settings["n"]:
        raise CLIError(
            f"removing {args.name!r} would leave fewer than n="
            f"{settings['n']} providers"
        )
    client = build_client(store)
    client.remove_csp(args.name)
    del settings["providers"][args.name]
    save_settings(store, settings)
    print(f"detached provider {args.name!r}; shares will migrate lazily "
          f"on download")
    return 0


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="cyrus",
        description="Client-defined cloud storage over multiple providers.",
    )
    parser.add_argument("--store", default=".cyrus",
                        help="store directory (default: .cyrus)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("init", help="create (or recover) a store")
    p.add_argument("--key", required=True, help="user key string")
    p.add_argument("--csp", action="append", required=True,
                   metavar="NAME=PATH", help="provider directory (repeat)")
    p.add_argument("--t", type=int, default=2)
    p.add_argument("--n", type=int, default=3)
    p.add_argument("--chunk-min", type=int, default=64 * 1024)
    p.add_argument("--chunk-avg", type=int, default=256 * 1024)
    p.add_argument("--chunk-max", type=int, default=2 * 1024 * 1024)
    p.add_argument("--parallelism", type=int, default=1,
                   help="concurrent transfer ops (1 = serial)")
    p.add_argument("--transfer-backend", choices=("thread", "async"),
                   default="thread",
                   help="parallel transfer core: 'thread' pool or "
                        "'async' event loop (default: thread)")
    p.add_argument("--encode-workers", type=int, default=0,
                   help="erasure-encode worker processes (0 = inline)")
    p.add_argument("--max-inflight-per-csp", type=int, default=None,
                   help="concurrent ops allowed per provider when parallel")
    p.add_argument("--client-id", default=None)
    p.add_argument("--force", action="store_true")
    p.set_defaults(func=cmd_init)

    p = sub.add_parser("put", help="upload a file")
    p.add_argument("file")
    p.add_argument("--as", dest="as_name", default=None,
                   help="store under this name")
    p.set_defaults(func=cmd_put)

    p = sub.add_parser("get", help="download a file")
    p.add_argument("name")
    p.add_argument("-o", "--output", default=None)
    p.add_argument("--version", type=int, default=0,
                   help="versions back from latest (default 0)")
    p.set_defaults(func=cmd_get)

    p = sub.add_parser("ls", help="list files")
    p.add_argument("prefix", nargs="?", default="")
    p.set_defaults(func=cmd_ls)

    p = sub.add_parser("history", help="show a file's versions")
    p.add_argument("name")
    p.set_defaults(func=cmd_history)

    p = sub.add_parser("rm", help="delete a file (tombstone)")
    p.add_argument("name")
    p.set_defaults(func=cmd_rm)

    p = sub.add_parser("conflicts", help="list unresolved conflicts")
    p.set_defaults(func=cmd_conflicts)

    p = sub.add_parser("resolve", help="resolve conflicts")
    p.set_defaults(func=cmd_resolve)

    p = sub.add_parser("status", help="store and provider overview")
    p.set_defaults(func=cmd_status)

    p = sub.add_parser(
        "recover",
        help="replay the crash journal (roll interrupted operations "
             "forward or back)",
    )
    p.set_defaults(func=cmd_recover)

    p = sub.add_parser(
        "scrub",
        help="verify share existence/integrity and repair damage "
             "(anti-entropy pass)",
    )
    p.add_argument("--budget", type=int, default=None,
                   help="max share transfers this pass (default: unlimited)")
    p.add_argument("--no-repair", action="store_true",
                   help="report damage without re-uploading shares")
    p.add_argument("--delete-orphans", action="store_true",
                   help="delete share objects no chunk references "
                        "(only when no other client is mid-upload)")
    p.set_defaults(func=cmd_scrub)

    p = sub.add_parser("debts", help="list open redundancy debts "
                                     "(chunks stored with < n shares)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable debt list")
    p.set_defaults(func=cmd_debts)

    p = sub.add_parser("repair", help="re-disperse missing shares and "
                                      "retire redundancy debts")
    p.add_argument("--budget", type=int, default=None,
                   help="max share transfers this pass (default: unlimited)")
    p.set_defaults(func=cmd_repair)

    p = sub.add_parser("sync-dir", help="two-way sync a local directory")
    p.add_argument("directory")
    p.set_defaults(func=cmd_sync_dir)

    p = sub.add_parser("prune", help="drop old versions of a file")
    p.add_argument("name")
    p.add_argument("--keep", type=int, default=1,
                   help="versions to keep (default 1)")
    p.set_defaults(func=cmd_prune)

    p = sub.add_parser("gc", help="reclaim unreferenced chunk shares")
    p.set_defaults(func=cmd_gc)

    p = sub.add_parser("import", help="adopt an object already at a provider")
    p.add_argument("provider")
    p.add_argument("object")
    p.add_argument("--as", dest="as_name", default=None)
    p.set_defaults(func=cmd_import)

    p = sub.add_parser("bench", help="measure coding/chunking/e2e throughput "
                                     "and write BENCH_codec.json / BENCH_e2e.json")
    p.add_argument("--quick", action="store_true",
                   help="small payloads (the CI-sized run)")
    p.add_argument("--out-dir", default=".",
                   help="directory for the BENCH_*.json reports")
    p.add_argument("--gate", default=None, metavar="BASELINE",
                   help="exit 1 on regression against this baseline JSON")
    p.add_argument("--tolerance", type=float, default=None,
                   help="override the baseline's committed tolerance")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser("fleet", help="simulate a multi-tenant fleet and "
                                     "write FLEET_report.json")
    p.add_argument("--tenants", type=int, default=32,
                   help="simulated tenants (default 32)")
    p.add_argument("--seed", type=int, default=0,
                   help="workload seed (same seed => identical report)")
    p.add_argument("--csps", type=int, default=6,
                   help="shared CSP accounts (default 6)")
    p.add_argument("--meta-groups", type=int, default=2,
                   help="metadata shard groups (default 2)")
    p.add_argument("--engine", choices=("netsim", "memory"),
                   default="netsim",
                   help="substrate: flow-simulated links or in-memory "
                        "stores (default netsim)")
    p.add_argument("--files-per-tenant", type=int, default=6)
    p.add_argument("--ops-per-tenant", type=int, default=12)
    p.add_argument("--zipf-s", type=float, default=1.1,
                   help="Zipf popularity exponent (default 1.1)")
    p.add_argument("--arrival-rate", type=float, default=0.5,
                   help="Poisson ops/sec per tenant (default 0.5)")
    p.add_argument("--quota-bytes", type=int, default=None,
                   help="per-tenant storage quota (default: unlimited)")
    p.add_argument("--out", default="FLEET_report.json",
                   help="report path (default: FLEET_report.json)")
    p.add_argument("--gate", action="store_true",
                   help="exit 1 unless all tenants converge, p99 is "
                        "finite and load skew stays under --max-skew")
    p.add_argument("--max-skew", type=float, default=2.0,
                   help="per-CSP load skew gate threshold (default 2.0)")
    p.set_defaults(func=cmd_fleet)

    p = sub.add_parser("stats", help="observability snapshot (ops, bytes, "
                                     "retries per provider)")
    p.add_argument("--json", action="store_true",
                   help="full metrics snapshot as JSON")
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("trace", help="trace one operation to a Chrome-trace "
                                     "file")
    p.add_argument("--out", default="cyrus-trace.json",
                   help="output path (default: cyrus-trace.json)")
    trace_sub = p.add_subparsers(dest="traced_op", required=True)
    tp = trace_sub.add_parser("put", help="trace an upload")
    tp.add_argument("file")
    tp.add_argument("--as", dest="as_name", default=None)
    tp = trace_sub.add_parser("get", help="trace a download")
    tp.add_argument("name")
    tp = trace_sub.add_parser("sync", help="trace a metadata sync")
    for tp in trace_sub.choices.values():
        # SUPPRESS so a child default does not clobber the parent's
        tp.add_argument("--out", default=argparse.SUPPRESS)
        tp.set_defaults(func=cmd_trace)

    p = sub.add_parser("add-csp", help="attach a provider")
    p.add_argument("csp", metavar="NAME=PATH")
    p.set_defaults(func=cmd_add_csp)

    p = sub.add_parser("remove-csp", help="detach a provider")
    p.add_argument("name")
    p.set_defaults(func=cmd_remove_csp)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except CLIError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except CyrusError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        # the single teardown path: whatever clients the command built
        while _active_clients:
            _active_clients.pop().close()


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
