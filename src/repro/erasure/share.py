"""Share container.

A :class:`Share` is one of the ``n`` coded fragments of a chunk.  It
carries its creation ``index`` (the row of the dispersal matrix that
produced it) because decoding must know which rows of the matrix to
invert, and the original ``chunk_size`` because encoding pads the chunk
to a multiple of ``t``.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Share:
    """One coded fragment of a chunk.

    Attributes:
        index: Dispersal-matrix row index in ``[0, n)``.
        data: The coded bytes (``ceil(chunk_size / t)`` bytes).
        t: Reconstruction threshold used at encoding time.
        n: Total number of shares produced at encoding time.
        chunk_size: Unpadded length of the original chunk in bytes.
    """

    index: int
    data: bytes = field(repr=False)
    t: int
    n: int
    chunk_size: int

    def __post_init__(self) -> None:
        if not 0 <= self.index < self.n:
            raise ValueError(f"share index {self.index} outside [0, {self.n})")
        if self.t < 1 or self.t > self.n:
            raise ValueError(f"invalid (t, n) = ({self.t}, {self.n})")
        if self.chunk_size < 0:
            raise ValueError("chunk_size must be non-negative")

    @property
    def size(self) -> int:
        """Size of the coded payload in bytes."""
        return len(self.data)
