"""Share container.

A :class:`Share` is one of the ``n`` coded fragments of a chunk.  It
carries its creation ``index`` (the row of the dispersal matrix that
produced it) because decoding must know which rows of the matrix to
invert, and the original ``chunk_size`` because encoding pads the chunk
to a multiple of ``t``.

``data`` is any read-only bytes-like object.  The vectorised codec
hands out zero-copy ``memoryview`` rows of its output matrix here, so
a share travels from encode to the provider upload without being
copied; providers that need to own the payload (anything that stores
it) take their copy at the storage boundary, where a real network send
would consume the buffer.  Use :meth:`to_bytes` when an owning ``bytes``
object is genuinely required.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Payload types a Share may carry (anything the buffer protocol covers).
BytesLike = "bytes | bytearray | memoryview"


@dataclass(frozen=True)
class Share:
    """One coded fragment of a chunk.

    Attributes:
        index: Dispersal-matrix row index in ``[0, n)``.
        data: The coded payload (``ceil(chunk_size / t)`` bytes), as any
            bytes-like object — equality still compares content.
        t: Reconstruction threshold used at encoding time.
        n: Total number of shares produced at encoding time.
        chunk_size: Unpadded length of the original chunk in bytes.
    """

    index: int
    # hash=False: memoryview payloads are unhashable; identity for sets/
    # dicts comes from the remaining fields (equal shares still hash equal)
    data: bytes = field(repr=False, hash=False)
    t: int
    n: int
    chunk_size: int

    def __post_init__(self) -> None:
        if not 0 <= self.index < self.n:
            raise ValueError(f"share index {self.index} outside [0, {self.n})")
        if self.t < 1 or self.t > self.n:
            raise ValueError(f"invalid (t, n) = ({self.t}, {self.n})")
        if self.chunk_size < 0:
            raise ValueError("chunk_size must be non-negative")

    @property
    def size(self) -> int:
        """Size of the coded payload in bytes."""
        return len(self.data)

    def to_bytes(self) -> bytes:
        """The payload as an owning ``bytes`` object (copies if needed)."""
        return self.data if type(self.data) is bytes else bytes(self.data)
