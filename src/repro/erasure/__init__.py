"""(t, n) secret sharing via non-systematic Reed--Solomon coding.

CYRUS divides each chunk into ``n`` coded shares such that any ``t``
reconstruct the chunk and any ``t - 1`` reveal nothing directly (the
coded shares never contain plaintext because the code is
non-systematic; paper Figure 5).  The dispersal matrix is a Vandermonde
matrix whose evaluation points are derived from a hash of the user's key
string, so decoding additionally requires the key (paper Section 7.1).
"""

from repro.erasure.rs import RSCodec
from repro.erasure.keyed import KeyedSharer, derive_dispersal_points
from repro.erasure.share import Share

__all__ = ["RSCodec", "KeyedSharer", "Share", "derive_dispersal_points"]
