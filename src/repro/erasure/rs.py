"""Non-systematic Reed--Solomon erasure codec.

The codec multiplies the data (reshaped into ``t`` stripes) by an
``n x t`` dispersal matrix over GF(2^8); every output row is a share and
no row of the default Vandermonde matrix is a unit vector, so no share
contains plaintext (paper Figure 5).  Decoding inverts the ``t x t``
submatrix formed by the rows of any ``t`` distinct shares.

The hot paths (encode, decode) use the precomputed 256x256
multiplication table with numpy gathers: encoding a chunk is ``n * t``
row-gathers plus XORs, with no per-byte Python loop, which keeps
throughput in the hundreds of MB/s — fast enough that transfer, not
coding, bounds end-to-end completion time (paper Section 7.1).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence

import numpy as np

from repro.errors import CodingError, InsufficientSharesError
from repro.erasure.share import Share
from repro.gf.matrix import gf_mat_inv, vandermonde
from repro.gf.tables import MUL_TABLE


class RSCodec:
    """A (t, n) non-systematic Reed--Solomon codec.

    Args:
        t: Reconstruction threshold (shares needed to decode).
        n: Total shares produced per chunk.
        points: Optional explicit dispersal evaluation points (n distinct
            non-zero field elements).  Defaults to ``1..n``, which is what
        an unkeyed deployment uses; :class:`repro.erasure.KeyedSharer`
        passes key-derived points instead.
    """

    def __init__(self, t: int, n: int, points: Sequence[int] | None = None):
        if t < 1:
            raise CodingError(f"t must be >= 1, got {t}")
        if n < t:
            raise CodingError(f"need n >= t, got (t, n) = ({t}, {n})")
        if n > 255:
            raise CodingError(f"n must be <= 255 in GF(2^8), got {n}")
        if points is None:
            points = list(range(1, n + 1))
        if len(points) != n:
            raise CodingError(f"expected {n} dispersal points, got {len(points)}")
        self.t = t
        self.n = n
        self._points = np.asarray(points, dtype=np.uint8)
        try:
            self._matrix = vandermonde(self._points, t)
        except ValueError as exc:
            raise CodingError(str(exc)) from exc

    @property
    def dispersal_matrix(self) -> np.ndarray:
        """The n x t encoding matrix (copy; rows index shares)."""
        return self._matrix.copy()

    def _stripe(self, data: bytes) -> np.ndarray:
        """Pad and reshape chunk bytes into a (t, stripe_len) array."""
        stripe_len = (len(data) + self.t - 1) // self.t
        if stripe_len == 0:
            stripe_len = 1  # encode empty chunks as one zero column
        padded = np.zeros(self.t * stripe_len, dtype=np.uint8)
        if data:
            padded[: len(data)] = np.frombuffer(data, dtype=np.uint8)
        return padded.reshape(self.t, stripe_len)

    def encode(self, data: bytes) -> list[Share]:
        """Encode chunk bytes into ``n`` shares of ``ceil(len/t)`` bytes each."""
        stripes = self._stripe(data)
        shares = []
        for i in range(self.n):
            coded = self._combine(self._matrix[i], stripes)
            shares.append(
                Share(index=i, data=coded.tobytes(), t=self.t, n=self.n,
                      chunk_size=len(data))
            )
        return shares

    def encode_rows(self, data: bytes, indices: Iterable[int]) -> list[Share]:
        """Encode only the shares with the given indices.

        Used by lazy share migration (paper Section 5.5): after a CSP is
        removed, only the missing share index is regenerated.
        """
        stripes = self._stripe(data)
        out = []
        for i in indices:
            if not 0 <= i < self.n:
                raise CodingError(f"share index {i} outside [0, {self.n})")
            coded = self._combine(self._matrix[i], stripes)
            out.append(
                Share(index=i, data=coded.tobytes(), t=self.t, n=self.n,
                      chunk_size=len(data))
            )
        return out

    @staticmethod
    def _combine(coeffs: np.ndarray, stripes: np.ndarray) -> np.ndarray:
        """XOR-accumulate coeff[j] * stripes[j] using the mul table."""
        acc = np.zeros(stripes.shape[1], dtype=np.uint8)
        for j, c in enumerate(coeffs):
            if c == 0:
                continue
            acc ^= MUL_TABLE[c][stripes[j]]
        return acc

    def decode(self, shares: Sequence[Share]) -> bytes:
        """Reconstruct the chunk from any ``t`` distinct shares.

        Extra shares beyond ``t`` are ignored (the first ``t`` distinct
        indices are used).  Raises :class:`InsufficientSharesError` when
        fewer than ``t`` distinct indices are available and
        :class:`CodingError` on share-shape mismatches.
        """
        distinct: dict[int, Share] = {}
        for s in shares:
            if s.t != self.t or s.n != self.n:
                raise CodingError(
                    f"share coded with (t, n) = ({s.t}, {s.n}), "
                    f"codec is ({self.t}, {self.n})"
                )
            distinct.setdefault(s.index, s)
        if len(distinct) < self.t:
            raise InsufficientSharesError(
                f"need {self.t} distinct shares, got {len(distinct)}"
            )
        chosen = [distinct[i] for i in sorted(distinct)][: self.t]
        sizes = {s.chunk_size for s in chosen}
        if len(sizes) != 1:
            raise CodingError(f"shares disagree on chunk size: {sorted(sizes)}")
        chunk_size = sizes.pop()
        stripe_len = max(1, (chunk_size + self.t - 1) // self.t)
        for s in chosen:
            if len(s.data) != stripe_len:
                raise CodingError(
                    f"share {s.index} has {len(s.data)} bytes, expected {stripe_len}"
                )
        sub = self._matrix[[s.index for s in chosen], :]
        try:
            inv = gf_mat_inv(sub)
        except np.linalg.LinAlgError as exc:
            raise CodingError("singular share submatrix") from exc
        coded = np.stack(
            [np.frombuffer(s.data, dtype=np.uint8) for s in chosen], axis=0
        )
        stripes = np.zeros((self.t, stripe_len), dtype=np.uint8)
        for j in range(self.t):
            stripes[j] = self._combine(inv[j], coded)
        return stripes.reshape(-1)[:chunk_size].tobytes()

    def decode_verified(
        self,
        shares: Sequence[Share],
        verify,
    ) -> bytes:
        """Reconstruct despite corrupted shares, using a verifier.

        Paper Section 5.1: "R-S coding goes further than secret sharing:
        it can recover a chunk's data even if there are errors in the t
        shares used to reconstruct the chunk."  CYRUS content-addresses
        every chunk, so instead of algebraic error location
        (Berlekamp--Welch) we decode t-subsets of the available shares
        and accept the first whose plaintext passes ``verify`` (the
        chunk-hash check) — with up to ``n - t`` corrupted shares some
        clean subset always exists.

        Args:
            shares: Any number (>= t) of possibly-corrupt shares.
            verify: ``bytes -> bool`` — e.g. a SHA-1 comparison.

        Raises:
            InsufficientSharesError: Fewer than t distinct indices.
            CodingError: No t-subset produced a verifiable chunk.
        """
        distinct: dict[int, Share] = {}
        for s in shares:
            distinct.setdefault(s.index, s)
        if len(distinct) < self.t:
            raise InsufficientSharesError(
                f"need {self.t} distinct shares, got {len(distinct)}"
            )
        candidates = [distinct[i] for i in sorted(distinct)]
        for combo in itertools.combinations(candidates, self.t):
            try:
                plaintext = self.decode(list(combo))
            except CodingError:
                continue
            if verify(plaintext):
                return plaintext
        raise CodingError(
            f"no {self.t}-subset of {len(candidates)} shares verified; "
            f"too many corrupted shares"
        )
