"""Non-systematic Reed--Solomon erasure codec.

The codec multiplies the data (reshaped into ``t`` stripes) by an
``n x t`` dispersal matrix over GF(2^8); every output row is a share and
no row of the default Vandermonde matrix is a unit vector, so no share
contains plaintext (paper Figure 5).  Decoding inverts the ``t x t``
submatrix formed by the rows of any ``t`` distinct shares.

Two interchangeable backends produce byte-identical shares:

* ``"vector"`` (:mod:`repro.gf.vector`) — one blocked numpy gather
  through the 256x256 multiplication table encodes all ``n`` rows of a
  chunk at once and hands out the output rows as zero-copy memoryview
  payloads.  Throughput is hundreds of MB/s, so transfer rather than
  coding bounds end-to-end completion time (paper Section 7.1).
* ``"scalar"`` (:mod:`repro.gf.scalar`) — pure-Python byte-at-a-time
  loops with independently built tables.  It is the fallback when numpy
  is unavailable and the oracle the equivalence suites compare against.

Selection is automatic (``default_backend``): ``CYRUS_CODEC`` may force
``vector`` or ``scalar``; ``CYRUS_NO_NUMPY_ACCEL=1`` is an alias for
scalar; otherwise ``auto`` picks vector whenever numpy imports.
"""

from __future__ import annotations

import itertools
import os
from typing import Iterable, Sequence

from repro.errors import CodingError, InsufficientSharesError
from repro.erasure.share import Share
from repro.gf import scalar as gfscalar

try:  # pragma: no cover - exercised implicitly by backend selection
    import numpy as np

    from repro.gf import vector as gfvec
    from repro.gf.matrix import gf_mat_inv

    _HAVE_NUMPY = True
except ImportError:  # pragma: no cover - container always ships numpy
    np = None
    gfvec = None
    gf_mat_inv = None
    _HAVE_NUMPY = False

BACKENDS = ("vector", "scalar")


def default_backend() -> str:
    """Resolve the codec backend from the environment.

    ``CYRUS_NO_NUMPY_ACCEL=1`` forces scalar; else ``CYRUS_CODEC`` may
    name ``vector``/``scalar`` explicitly (``auto``/unset picks vector
    when numpy is importable, scalar otherwise).
    """
    if os.environ.get("CYRUS_NO_NUMPY_ACCEL") == "1":
        return "scalar"
    choice = os.environ.get("CYRUS_CODEC", "auto").strip().lower()
    if choice in BACKENDS:
        return choice
    if choice not in ("", "auto"):
        raise CodingError(
            f"unknown CYRUS_CODEC backend {choice!r}; expected auto, vector or scalar"
        )
    return "vector" if _HAVE_NUMPY else "scalar"


class RSCodec:
    """A (t, n) non-systematic Reed--Solomon codec.

    Args:
        t: Reconstruction threshold (shares needed to decode).
        n: Total shares produced per chunk.
        points: Optional explicit dispersal evaluation points (n distinct
            non-zero field elements).  Defaults to ``1..n``, which is what
            an unkeyed deployment uses; :class:`repro.erasure.KeyedSharer`
            passes key-derived points instead.
        backend: ``"vector"``, ``"scalar"``, or None for
            :func:`default_backend`.
    """

    def __init__(
        self,
        t: int,
        n: int,
        points: Sequence[int] | None = None,
        backend: str | None = None,
    ):
        if t < 1:
            raise CodingError(f"t must be >= 1, got {t}")
        if n < t:
            raise CodingError(f"need n >= t, got (t, n) = ({t}, {n})")
        if n > 255:
            raise CodingError(f"n must be <= 255 in GF(2^8), got {n}")
        if points is None:
            points = list(range(1, n + 1))
        if len(points) != n:
            raise CodingError(f"expected {n} dispersal points, got {len(points)}")
        backend = default_backend() if backend is None else backend
        if backend not in BACKENDS:
            raise CodingError(f"unknown codec backend {backend!r}")
        if backend == "vector" and not _HAVE_NUMPY:
            raise CodingError("vector backend requested but numpy is unavailable")
        self.t = t
        self.n = n
        self.backend = backend
        self._points = list(points)
        try:
            # Pure-Python construction either way; the two backends must
            # agree on the matrix bit-for-bit.
            self._matrix = gfscalar.vandermonde_rows(self._points, t)
        except ValueError as exc:
            raise CodingError(str(exc)) from exc
        self._matrix_np = (
            np.asarray(self._matrix, dtype=np.uint8) if _HAVE_NUMPY else None
        )

    @property
    def dispersal_matrix(self) -> "np.ndarray":
        """The n x t encoding matrix (copy; rows index shares)."""
        if self._matrix_np is None:  # pragma: no cover - numpy-less fallback
            raise CodingError("dispersal_matrix requires numpy")
        return self._matrix_np.copy()

    def encode(self, data) -> list[Share]:
        """Encode chunk bytes into ``n`` shares of ``ceil(len/t)`` bytes each.

        On the vector backend the share payloads are zero-copy
        memoryviews over one contiguous ``(n, L)`` output matrix.
        """
        return self._encode_rows(data, range(self.n))

    def encode_rows(self, data, indices: Iterable[int]) -> list[Share]:
        """Encode only the shares with the given indices.

        Used by lazy share migration (paper Section 5.5): after a CSP is
        removed, only the missing share index is regenerated.
        """
        idx = list(indices)
        for i in idx:
            if not 0 <= i < self.n:
                raise CodingError(f"share index {i} outside [0, {self.n})")
        return self._encode_rows(data, idx)

    def _encode_rows(self, data, indices: Iterable[int]) -> list[Share]:
        idx = list(indices)
        size = len(data)
        if self.backend == "vector":
            sub = self._matrix_np[idx, :]
            coded = gfvec.encode_blocks(sub, data, self.t)
            payloads = [coded[row].data for row in range(len(idx))]
        else:
            stripes = gfscalar.stripe_rows(data, self.t)
            rows = [self._matrix[i] for i in idx]
            payloads = [bytes(p) for p in gfscalar.matmul_rows(rows, stripes)]
        return [
            Share(index=i, data=payload, t=self.t, n=self.n, chunk_size=size)
            for i, payload in zip(idx, payloads)
        ]

    def decode(self, shares: Sequence[Share]) -> bytes:
        """Reconstruct the chunk from any ``t`` distinct shares.

        Extra shares beyond ``t`` are ignored (the first ``t`` distinct
        indices are used).  Raises :class:`InsufficientSharesError` when
        fewer than ``t`` distinct indices are available and
        :class:`CodingError` on share-shape mismatches.
        """
        distinct: dict[int, Share] = {}
        for s in shares:
            if s.t != self.t or s.n != self.n:
                raise CodingError(
                    f"share coded with (t, n) = ({s.t}, {s.n}), "
                    f"codec is ({self.t}, {self.n})"
                )
            distinct.setdefault(s.index, s)
        if len(distinct) < self.t:
            raise InsufficientSharesError(
                f"need {self.t} distinct shares, got {len(distinct)}"
            )
        chosen = [distinct[i] for i in sorted(distinct)][: self.t]
        sizes = {s.chunk_size for s in chosen}
        if len(sizes) != 1:
            raise CodingError(f"shares disagree on chunk size: {sorted(sizes)}")
        chunk_size = sizes.pop()
        stripe_len = max(1, (chunk_size + self.t - 1) // self.t)
        for s in chosen:
            if len(s.data) != stripe_len:
                raise CodingError(
                    f"share {s.index} has {len(s.data)} bytes, expected {stripe_len}"
                )
        if self.backend == "vector":
            return self._decode_vector(chosen, chunk_size, stripe_len)
        return self._decode_scalar(chosen, chunk_size)

    def _decode_vector(
        self, chosen: Sequence[Share], chunk_size: int, stripe_len: int
    ) -> bytes:
        sub = self._matrix_np[[s.index for s in chosen], :]
        try:
            inv = gf_mat_inv(sub)
        except np.linalg.LinAlgError as exc:
            raise CodingError("singular share submatrix") from exc
        coded = np.stack(
            [np.frombuffer(s.data, dtype=np.uint8) for s in chosen], axis=0
        )
        stripes = gfvec.matmul(inv, coded)
        return stripes.reshape(-1)[:chunk_size].tobytes()

    def _decode_scalar(self, chosen: Sequence[Share], chunk_size: int) -> bytes:
        sub = [self._matrix[s.index] for s in chosen]
        try:
            inv_rows = gfscalar.mat_inv(sub)
        except ValueError as exc:
            raise CodingError("singular share submatrix") from exc
        coded = [bytes(s.data) for s in chosen]
        stripes = gfscalar.matmul_rows(inv_rows, coded)
        return b"".join(bytes(row) for row in stripes)[:chunk_size]

    def decode_verified(
        self,
        shares: Sequence[Share],
        verify,
    ) -> bytes:
        """Reconstruct despite corrupted shares, using a verifier.

        Paper Section 5.1: "R-S coding goes further than secret sharing:
        it can recover a chunk's data even if there are errors in the t
        shares used to reconstruct the chunk."  CYRUS content-addresses
        every chunk, so instead of algebraic error location
        (Berlekamp--Welch) we decode t-subsets of the available shares
        and accept the first whose plaintext passes ``verify`` (the
        chunk-hash check) — with up to ``n - t`` corrupted shares some
        clean subset always exists.

        Args:
            shares: Any number (>= t) of possibly-corrupt shares.
            verify: ``bytes -> bool`` — e.g. a SHA-1 comparison.

        Raises:
            InsufficientSharesError: Fewer than t distinct indices.
            CodingError: No t-subset produced a verifiable chunk.
        """
        distinct: dict[int, Share] = {}
        for s in shares:
            distinct.setdefault(s.index, s)
        if len(distinct) < self.t:
            raise InsufficientSharesError(
                f"need {self.t} distinct shares, got {len(distinct)}"
            )
        candidates = [distinct[i] for i in sorted(distinct)]
        for combo in itertools.combinations(candidates, self.t):
            try:
                plaintext = self.decode(list(combo))
            except CodingError:
                continue
            if verify(plaintext):
                return plaintext
        raise CodingError(
            f"no {self.t}-subset of {len(candidates)} shares verified; "
            f"too many corrupted shares"
        )
