"""Multiprocessing encode pool.

Erasure encoding is pure CPU, so the thread pool that overlaps
*transfers* (ScatterGatherPool) cannot speed it up — the GIL serialises
the table lookups.  This pool moves the GF(2^8) matrix multiply into
worker *processes*: the uploader submits every planned chunk right
after placement, the workers encode while earlier chunks' shares are
still in flight, and ``_ChunkPlan.share_data`` collects the finished
share map instead of encoding inline.

Workers rebuild their :class:`KeyedSharer` once per (key, t, n) via a
per-process cache, so the dispersal-matrix construction cost is paid
once per worker, not per chunk.  Chunks cross the process boundary as
``bytes`` (memoryviews do not pickle) and shares come back the same
way; the pool therefore trades one copy per chunk for parallel encode
— worthwhile exactly when encode, not copying, is the bottleneck,
which is why the pool is opt-in (``CyrusConfig.encode_workers > 0``).

The output is bit-identical to inline encoding: workers run the same
codec backend, and share order/content do not depend on which worker
encoded what.
"""

from __future__ import annotations

import functools
import multiprocessing
from typing import Sequence


@functools.lru_cache(maxsize=64)
def _worker_sharer(key: str, t: int, n: int, backend: str):
    """Per-process sharer cache (each worker builds its matrices once)."""
    from repro.erasure.keyed import KeyedSharer

    return KeyedSharer(key, t, n, backend=backend)


def _encode_chunk(
    key: str, t: int, n: int, backend: str, data: bytes
) -> list[bytes]:
    """Worker entry: encode one chunk, return owning per-index payloads."""
    sharer = _worker_sharer(key, t, n, backend)
    return [bytes(s.data) for s in sharer.split(data)]


class EncodePool:
    """A process pool that encodes chunks ahead of the transfer engine.

    Args:
        workers: Worker process count (>= 1).
        backend: Codec backend the workers use (resolved at submit time
            when None, so the pool honours ``CYRUS_CODEC``).
    """

    def __init__(self, workers: int, backend: str | None = None):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.backend = backend
        self._pool = multiprocessing.get_context("spawn").Pool(workers)
        self._closed = False

    def submit(self, key: str, t: int, n: int, data) -> "EncodeFuture":
        """Queue one chunk for encoding; returns a future of {index: bytes}."""
        if self._closed:
            raise RuntimeError("EncodePool is closed")
        backend = self.backend
        if backend is None:
            from repro.erasure.rs import default_backend

            backend = default_backend()
        payload = data if type(data) is bytes else bytes(data)
        async_result = self._pool.apply_async(
            _encode_chunk, (key, t, n, backend, payload)
        )
        return EncodeFuture(async_result, n)

    def close(self) -> None:
        """Shut the workers down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._pool.close()
        self._pool.join()

    def __enter__(self) -> "EncodePool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class EncodeFuture:
    """Handle to one in-flight chunk encode."""

    def __init__(self, async_result, n: int):
        self._result = async_result
        self._n = n

    def get(self, timeout: float | None = None) -> dict[int, bytes]:
        """Block for the share map {index: payload} (re-raises worker errors)."""
        payloads: Sequence[bytes] = self._result.get(timeout)
        return {i: payloads[i] for i in range(self._n)}
