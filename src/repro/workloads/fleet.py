"""Deterministic multi-tenant fleet workloads (Zipf popularity, Poisson
arrivals).

The paper validates CYRUS with a 20-user trial (Section 7.4); the fleet
harness scales that to hundreds of simulated tenants, which needs
*synthetic* per-tenant workloads with the two statistical properties
real storage traces show:

* **Zipf file popularity** — a tenant's operations concentrate on a few
  hot files; file of popularity rank ``r`` is chosen with probability
  proportional to ``1 / r**s``;
* **Poisson arrivals** — operation inter-arrival times are exponential
  with a per-tenant rate, so arrival timestamps are strictly sorted by
  construction.

Everything is driven by one integer seed.  Per-tenant RNG streams are
derived by hashing ``(seed, tenant_id)``, so plans are independent of
tenant iteration order, of each other, and of any *global* RNG state —
``random.seed(...)`` elsewhere in the process can never perturb a fleet
run (the import-order hazard the RNG audit removed from this package).

Plans are quota-aware: when a per-tenant quota is set, a planned PUT
that would push the tenant's live bytes (sum of latest version sizes)
over quota is shrunk to fit or converted into a GET, so a generated
plan can always be admitted by the fleet's quota admission.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import asdict, dataclass, field

from repro.workloads.generator import random_bytes

#: Minimum sensible per-tenant quota: one smallest file must fit.
_MIN_QUOTA_FILES = 1


def derive_rng(seed: int, *scope: object) -> random.Random:
    """A :class:`random.Random` keyed by ``(seed, *scope)``.

    SHA-1 based, so streams for different scopes are independent and a
    stream never depends on how many draws other scopes made.
    """
    digest = hashlib.sha1(
        ":".join([str(seed), *map(str, scope)]).encode("utf-8")
    ).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def zipf_weights(files: int, s: float) -> list[float]:
    """Normalised Zipf pmf over popularity ranks ``1..files``.

    Strictly decreasing in rank for ``s > 0`` (the monotonicity the
    property suite pins), uniform at ``s == 0``.
    """
    if files < 1:
        raise ValueError(f"files must be >= 1, got {files}")
    if s < 0:
        raise ValueError(f"zipf exponent must be >= 0, got {s}")
    raw = [1.0 / (rank ** s) for rank in range(1, files + 1)]
    total = sum(raw)
    return [w / total for w in raw]


@dataclass(frozen=True)
class FleetWorkloadSpec:
    """Shape of one fleet workload (per-tenant parameters).

    Attributes:
        tenants: Number of simulated tenants.
        files_per_tenant: Size of each tenant's file universe (Zipf
            ranks 1..files_per_tenant).
        ops_per_tenant: Operations per tenant plan.
        zipf_s: Zipf popularity exponent (0 = uniform).
        arrival_rate: Poisson operation rate per tenant (ops/second of
            simulated time).
        write_fraction: Probability an op on an already-created file is
            a PUT (first touch of a file is always a PUT).
        mean_file_bytes: Lognormal location for PUT payload sizes.
        min_file_bytes / max_file_bytes: Clamp for PUT payload sizes.
        quota_bytes: Per-tenant storage quota the plan must respect
            (None = unbounded).
        size_sigma: Lognormal shape for PUT payload sizes.
    """

    tenants: int = 32
    files_per_tenant: int = 6
    ops_per_tenant: int = 12
    zipf_s: float = 1.1
    arrival_rate: float = 0.5
    write_fraction: float = 0.55
    mean_file_bytes: int = 24 * 1024
    min_file_bytes: int = 2 * 1024
    max_file_bytes: int = 96 * 1024
    quota_bytes: int | None = None
    size_sigma: float = 0.6

    def __post_init__(self) -> None:
        if self.tenants < 1:
            raise ValueError(f"tenants must be >= 1, got {self.tenants}")
        if self.files_per_tenant < 1:
            raise ValueError("files_per_tenant must be >= 1")
        if self.ops_per_tenant < 1:
            raise ValueError("ops_per_tenant must be >= 1")
        if self.zipf_s < 0:
            raise ValueError("zipf_s must be >= 0")
        if self.arrival_rate <= 0:
            raise ValueError("arrival_rate must be > 0")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")
        if not 0 < self.min_file_bytes <= self.max_file_bytes:
            raise ValueError("need 0 < min_file_bytes <= max_file_bytes")
        if self.quota_bytes is not None and (
            self.quota_bytes < self.min_file_bytes * _MIN_QUOTA_FILES
        ):
            raise ValueError(
                f"quota_bytes={self.quota_bytes} cannot fit even one "
                f"minimum-size file ({self.min_file_bytes})"
            )


@dataclass(frozen=True)
class WorkloadOp:
    """One planned tenant operation.

    ``size``/``content_seed`` are meaningful for PUTs only (GETs carry
    the rank's file name and zeros).  :meth:`content` materialises the
    deterministic payload.
    """

    at: float
    action: str  # "put" | "get"
    name: str
    rank: int
    size: int = 0
    content_seed: int = 0

    def content(self) -> bytes:
        if self.action != "put":
            raise ValueError(f"no content for a {self.action!r} op")
        return random_bytes(self.size, seed=self.content_seed)


@dataclass(frozen=True)
class TenantPlan:
    """One tenant's full deterministic operation schedule."""

    tenant_id: str
    quota_bytes: int | None
    ops: tuple[WorkloadOp, ...]

    def expected_files(self) -> dict[str, WorkloadOp]:
        """name -> the last PUT op (the version a converged tenant holds)."""
        latest: dict[str, WorkloadOp] = {}
        for op in self.ops:
            if op.action == "put":
                latest[op.name] = op
        return latest

    def stored_bytes_timeline(self) -> list[int]:
        """Live bytes (sum of latest sizes) after each op — the series
        the quota invariant is asserted on."""
        sizes: dict[str, int] = {}
        series: list[int] = []
        for op in self.ops:
            if op.action == "put":
                sizes[op.name] = op.size
            series.append(sum(sizes.values()))
        return series


@dataclass(frozen=True)
class FleetWorkload:
    """All tenant plans for one (spec, seed) pair."""

    spec: FleetWorkloadSpec
    seed: int
    plans: tuple[TenantPlan, ...] = field(repr=False)

    def plan_for(self, tenant_id: str) -> TenantPlan:
        for plan in self.plans:
            if plan.tenant_id == tenant_id:
                return plan
        raise KeyError(f"no plan for tenant {tenant_id!r}")

    def merged_ops(self) -> list[tuple[str, WorkloadOp]]:
        """All (tenant_id, op) pairs in global arrival order.

        Ties (same instant) break on tenant id then plan position, so
        the replay order is fully deterministic.
        """
        out: list[tuple[float, str, int, WorkloadOp]] = []
        for plan in self.plans:
            for i, op in enumerate(plan.ops):
                out.append((op.at, plan.tenant_id, i, op))
        out.sort(key=lambda item: (item[0], item[1], item[2]))
        return [(tenant, op) for _at, tenant, _i, op in out]

    def fingerprint(self) -> str:
        """SHA-1 over the canonical JSON of every plan (determinism pin)."""
        payload = {
            "spec": asdict(self.spec),
            "seed": self.seed,
            "plans": [
                {
                    "tenant": plan.tenant_id,
                    "quota": plan.quota_bytes,
                    "ops": [asdict(op) for op in plan.ops],
                }
                for plan in self.plans
            ],
        }
        blob = json.dumps(payload, sort_keys=True).encode("utf-8")
        return hashlib.sha1(blob).hexdigest()


def tenant_ids(spec: FleetWorkloadSpec) -> list[str]:
    """Stable zero-padded tenant identifiers (``t000``, ``t001``, ...)."""
    width = max(3, len(str(spec.tenants - 1)))
    return [f"t{i:0{width}d}" for i in range(spec.tenants)]


def _draw_size(spec: FleetWorkloadSpec, rng: random.Random) -> int:
    import math

    size = int(rng.lognormvariate(math.log(spec.mean_file_bytes),
                                  spec.size_sigma))
    return max(spec.min_file_bytes, min(spec.max_file_bytes, size))


def _plan_tenant(
    spec: FleetWorkloadSpec, seed: int, tenant_id: str
) -> TenantPlan:
    rng = derive_rng(seed, "tenant", tenant_id)
    weights = zipf_weights(spec.files_per_tenant, spec.zipf_s)
    ranks = list(range(1, spec.files_per_tenant + 1))
    sizes: dict[str, int] = {}  # latest version size per created file
    ops: list[WorkloadOp] = []
    now = 0.0
    for _ in range(spec.ops_per_tenant):
        now += rng.expovariate(spec.arrival_rate)
        rank = rng.choices(ranks, weights=weights, k=1)[0]
        name = f"f{rank:03d}.dat"
        is_put = name not in sizes or rng.random() < spec.write_fraction
        if is_put:
            size = _draw_size(spec, rng)
            if spec.quota_bytes is not None:
                headroom = spec.quota_bytes - (
                    sum(sizes.values()) - sizes.get(name, 0)
                )
                if headroom < spec.min_file_bytes:
                    # quota-full for this file: degrade the op to a read
                    # of the hottest created file (or drop it when the
                    # tenant has created nothing yet)
                    if not sizes:
                        continue
                    fallback = min(sizes)  # lexicographic = hottest rank
                    ops.append(WorkloadOp(at=now, action="get",
                                          name=fallback,
                                          rank=int(fallback[1:4])))
                    continue
                size = min(size, headroom)
            content_rng = derive_rng(seed, "content", tenant_id, len(ops))
            ops.append(WorkloadOp(
                at=now, action="put", name=name, rank=rank, size=size,
                content_seed=content_rng.randrange(2 ** 31),
            ))
            sizes[name] = size
        else:
            ops.append(WorkloadOp(at=now, action="get", name=name, rank=rank))
    return TenantPlan(tenant_id=tenant_id,
                      quota_bytes=spec.quota_bytes, ops=tuple(ops))


def generate_fleet_workload(
    spec: FleetWorkloadSpec, seed: int = 0
) -> FleetWorkload:
    """Deterministic fleet plans: same (spec, seed) -> identical plans.

    Per-tenant streams are independent hash-derived RNGs; no global
    :mod:`random` state is read or written anywhere in the generator.
    """
    plans = tuple(
        _plan_tenant(spec, seed, tid) for tid in tenant_ids(spec)
    )
    return FleetWorkload(spec=spec, seed=seed, plans=plans)
