"""The paper's Table 4 evaluation dataset, synthesised.

Table 4 gives, per file extension, the file count and total bytes
(172 files, 638,433,479 bytes, average 3.71 MB).  The generator draws
per-file sizes from a seeded lognormal and rescales them so each
extension's total matches the table exactly; contents come from
:func:`repro.workloads.generator.redundant_bytes` so deduplication has
something to find, as it would on real documents.

A ``scale`` parameter shrinks every file proportionally — benchmarks
default to a scaled dataset so the full suite runs in seconds, while
``scale=1.0`` reproduces the table byte-for-byte.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.workloads.generator import redundant_bytes


@dataclass(frozen=True)
class ExtensionProfile:
    """One Table 4 row."""

    extension: str
    files: int
    total_bytes: int

    @property
    def average_size(self) -> int:
        return self.total_bytes // self.files


#: The paper's Table 4, verbatim.
TABLE4_PROFILE: tuple[ExtensionProfile, ...] = (
    ExtensionProfile("pdf", 70, 60_575_608),
    ExtensionProfile("pptx", 11, 12_263_894),
    ExtensionProfile("docx", 15, 9_844_628),
    ExtensionProfile("jpg", 55, 151_918_946),
    ExtensionProfile("mov", 7, 351_603_110),
    ExtensionProfile("apk", 10, 4_872_703),
    ExtensionProfile("ipa", 4, 47_354_590),
)

#: Table 4 totals, used by the benchmark that checks the regeneration.
TABLE4_TOTAL_FILES = 172
TABLE4_TOTAL_BYTES = 638_433_479


@dataclass(frozen=True)
class DatasetFile:
    """One synthetic file: name, size, and a lazy content recipe."""

    name: str
    extension: str
    size: int
    seed: int
    redundancy: float

    def content(self) -> bytes:
        """Materialise the file's bytes (deterministic per seed)."""
        return redundant_bytes(self.size, seed=self.seed,
                               redundancy=self.redundancy)


@dataclass(frozen=True)
class DatasetProfile:
    """A realised dataset: files summing to the profile totals."""

    files: tuple[DatasetFile, ...]

    @property
    def total_bytes(self) -> int:
        return sum(f.size for f in self.files)

    def by_extension(self) -> dict[str, list[DatasetFile]]:
        out: dict[str, list[DatasetFile]] = {}
        for f in self.files:
            out.setdefault(f.extension, []).append(f)
        return out

    def iter_contents(self) -> Iterator[tuple[DatasetFile, bytes]]:
        for f in self.files:
            yield f, f.content()


def _split_total(total: int, count: int, rng: random.Random,
                 sigma: float = 0.9) -> list[int]:
    """Sizes summing exactly to ``total`` with lognormal spread."""
    weights = [rng.lognormvariate(0.0, sigma) for _ in range(count)]
    scale = total / sum(weights)
    sizes = [max(1, int(w * scale)) for w in weights]
    # fix rounding drift on the largest file
    drift = total - sum(sizes)
    sizes[sizes.index(max(sizes))] += drift
    return sizes


def generate_dataset(
    scale: float = 1.0,
    seed: int = 1404,
    redundancy: float = 0.25,
    rng: random.Random | None = None,
) -> DatasetProfile:
    """Synthesise the Table 4 dataset.

    Args:
        scale: Multiplies every extension's total bytes (1.0 = the
            paper's 638.43 MB; benchmarks typically use 0.02-0.1).
        seed: Deterministic generation (ignored when ``rng`` is given).
        redundancy: Chunk-level redundancy of file contents.
        rng: Optional injected seeded stream; the global :mod:`random`
            state is never consulted either way.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    if rng is None:
        rng = random.Random(seed)
    files: list[DatasetFile] = []
    for profile in TABLE4_PROFILE:
        total = max(profile.files, int(profile.total_bytes * scale))
        sizes = _split_total(total, profile.files, rng)
        for i, size in enumerate(sizes):
            files.append(
                DatasetFile(
                    name=f"{profile.extension}/{profile.extension}_{i:03d}.{profile.extension}",
                    extension=profile.extension,
                    size=size,
                    seed=rng.randrange(2**31),
                    redundancy=redundancy,
                )
            )
    return DatasetProfile(files=tuple(files))
