"""Byte-content generators with controllable redundancy.

Real user files are compressible and partially redundant; what matters
for CYRUS is redundancy at *chunk granularity*, since that is what
deduplication sees.  :func:`redundant_bytes` interleaves fresh random
spans with repeats of earlier spans, giving a tunable dedup ratio;
:func:`edited_copy` produces a realistic "user edited the file" variant
(insertions/deletions/overwrites at random positions).
"""

from __future__ import annotations

import random


def random_bytes(size: int, seed: int) -> bytes:
    """Deterministic incompressible content."""
    if size < 0:
        raise ValueError("size must be non-negative")
    rng = random.Random(seed)
    return rng.randbytes(size)


def redundant_bytes(
    size: int,
    seed: int,
    redundancy: float = 0.3,
    span: int = 64 * 1024,
) -> bytes:
    """Content where ~``redundancy`` of spans repeat earlier spans.

    Args:
        size: Total length.
        seed: RNG seed.
        redundancy: Fraction of spans drawn from already-emitted spans.
        span: Span length (should exceed the chunker's average so a
            repeated span yields at least one repeated chunk).
    """
    if not 0 <= redundancy < 1:
        raise ValueError(f"redundancy must be in [0, 1), got {redundancy}")
    rng = random.Random(seed)
    out = bytearray()
    history: list[bytes] = []
    while len(out) < size:
        if history and rng.random() < redundancy:
            piece = rng.choice(history)
        else:
            piece = rng.randbytes(span)
            history.append(piece)
        out.extend(piece)
    return bytes(out[:size])


def edited_copy(
    data: bytes,
    seed: int,
    edits: int = 3,
    max_edit: int = 4 * 1024,
) -> bytes:
    """Apply a few local insertions/deletions/overwrites.

    Mimics a user saving a modified document: most content survives at
    chunk granularity, so content-defined chunking should dedup the
    bulk of the re-upload.
    """
    rng = random.Random(seed)
    out = bytearray(data)
    for _ in range(edits):
        if not out:
            break
        pos = rng.randrange(len(out))
        length = rng.randint(1, max_edit)
        kind = rng.choice(("insert", "delete", "overwrite"))
        if kind == "insert":
            out[pos:pos] = rng.randbytes(length)
        elif kind == "delete":
            del out[pos : pos + length]
        else:
            out[pos : pos + length] = rng.randbytes(
                min(length, len(out) - pos)
            )
    return bytes(out)
