"""Byte-content generators with controllable redundancy.

Real user files are compressible and partially redundant; what matters
for CYRUS is redundancy at *chunk granularity*, since that is what
deduplication sees.  :func:`redundant_bytes` interleaves fresh random
spans with repeats of earlier spans, giving a tunable dedup ratio;
:func:`edited_copy` produces a realistic "user edited the file" variant
(insertions/deletions/overwrites at random positions).

RNG discipline (fleet determinism contract): no function in this module
reads or writes the *global* :mod:`random` state.  Every generator
builds a private ``random.Random(seed)`` — or uses a caller-injected
``rng`` stream — so ``random.seed(...)`` anywhere else in the process
(library import side effects, test ordering) can never perturb the
bytes a workload produces.
"""

from __future__ import annotations

import random


def _resolve_rng(seed: int, rng: random.Random | None) -> random.Random:
    """The injected stream if given, else a private seeded one."""
    return rng if rng is not None else random.Random(seed)


def random_bytes(size: int, seed: int = 0,
                 rng: random.Random | None = None) -> bytes:
    """Deterministic incompressible content.

    Pass ``rng`` to draw from an existing seeded stream instead of
    ``seed``; the global RNG is never consulted either way.
    """
    if size < 0:
        raise ValueError("size must be non-negative")
    return _resolve_rng(seed, rng).randbytes(size)


def redundant_bytes(
    size: int,
    seed: int = 0,
    redundancy: float = 0.3,
    span: int = 64 * 1024,
    rng: random.Random | None = None,
) -> bytes:
    """Content where ~``redundancy`` of spans repeat earlier spans.

    Args:
        size: Total length.
        seed: RNG seed (ignored when ``rng`` is given).
        redundancy: Fraction of spans drawn from already-emitted spans.
        span: Span length (should exceed the chunker's average so a
            repeated span yields at least one repeated chunk).
        rng: Optional injected seeded stream.
    """
    if not 0 <= redundancy < 1:
        raise ValueError(f"redundancy must be in [0, 1), got {redundancy}")
    rng = _resolve_rng(seed, rng)
    out = bytearray()
    history: list[bytes] = []
    while len(out) < size:
        if history and rng.random() < redundancy:
            piece = rng.choice(history)
        else:
            piece = rng.randbytes(span)
            history.append(piece)
        out.extend(piece)
    return bytes(out[:size])


def edited_copy(
    data: bytes,
    seed: int = 0,
    edits: int = 3,
    max_edit: int = 4 * 1024,
    rng: random.Random | None = None,
) -> bytes:
    """Apply a few local insertions/deletions/overwrites.

    Mimics a user saving a modified document: most content survives at
    chunk granularity, so content-defined chunking should dedup the
    bulk of the re-upload.  ``rng`` injects a seeded stream in place of
    ``seed``.
    """
    rng = _resolve_rng(seed, rng)
    out = bytearray(data)
    for _ in range(edits):
        if not out:
            break
        pos = rng.randrange(len(out))
        length = rng.randint(1, max_edit)
        kind = rng.choice(("insert", "delete", "overwrite"))
        if kind == "insert":
            out[pos:pos] = rng.randbytes(length)
        elif kind == "delete":
            del out[pos : pos + length]
        else:
            out[pos : pos + length] = rng.randbytes(
                min(length, len(out) - pos)
            )
    return bytes(out)
