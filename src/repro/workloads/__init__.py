"""Workload generation: the Table 4 dataset, the user-trial scenarios,
and the multi-tenant fleet workloads (Zipf popularity, Poisson arrivals)."""

from repro.workloads.dataset import (
    TABLE4_PROFILE,
    DatasetFile,
    DatasetProfile,
    ExtensionProfile,
    generate_dataset,
)
from repro.workloads.fleet import (
    FleetWorkload,
    FleetWorkloadSpec,
    TenantPlan,
    WorkloadOp,
    derive_rng,
    generate_fleet_workload,
    tenant_ids,
    zipf_weights,
)
from repro.workloads.generator import redundant_bytes, random_bytes, edited_copy
from repro.workloads.trial import TRIAL_PROFILES, TrialProfile, trial_environment

__all__ = [
    "DatasetFile",
    "DatasetProfile",
    "ExtensionProfile",
    "TABLE4_PROFILE",
    "generate_dataset",
    "random_bytes",
    "redundant_bytes",
    "edited_copy",
    "TrialProfile",
    "TRIAL_PROFILES",
    "trial_environment",
    "FleetWorkload",
    "FleetWorkloadSpec",
    "TenantPlan",
    "WorkloadOp",
    "derive_rng",
    "generate_fleet_workload",
    "tenant_ids",
    "zipf_weights",
]
