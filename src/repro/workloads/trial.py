"""The deployment-trial scenarios (paper Section 7.4, Figure 19).

Twenty users in the US and Korea ran CYRUS against Dropbox, Google
Drive, SkyDrive (OneDrive) and Box.  The figure's qualitative structure
is fixed by environmental facts the paper states outright:

* **US** — "CYRUS encounters a bottleneck of limited total uplink
  throughput from the client": per-CSP uplinks are fast relative to the
  client's (residential, asymmetric) uplink, so a (2,3) upload (1.5x
  the data) is competitive but a (2,4) upload (2x) is slower than any
  single-CSP upload.  Downlinks are fast and not client-bound.
* **Korea** — "connections to individual CSPs are much slower than in
  the U.S.": the client link is never binding.  Uplink rates are close
  to Table 2's (measured in Korea); downlink rates are skewed across
  providers, which is why the paper measures a large (33.8 s on 20 MB)
  download saving from (2,4) — the fourth share lets the selector avoid
  the slow providers entirely.

Rates are calibrated to land in those regimes and documented per
experiment in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netsim.link import Link
from repro.netsim.trace import RateTrace

#: The four prototype CSPs (Section 6; SkyDrive is OneDrive's old name).
TRIAL_CSPS: tuple[str, ...] = ("Dropbox", "Google Drive", "OneDrive", "Box")


@dataclass(frozen=True)
class TrialProfile:
    """One country's network environment (rates in bytes/s, RTT in s)."""

    country: str
    up_rates: dict[str, float]
    down_rates: dict[str, float]
    csp_rtts: dict[str, float]
    client_up: float
    client_down: float

    def links(self) -> dict[str, Link]:
        """Simulated links for this environment."""
        return {
            name: Link(
                link_id=name,
                rtt_s=self.csp_rtts[name],
                up=RateTrace.constant(self.up_rates[name]),
                down=RateTrace.constant(self.down_rates[name]),
            )
            for name in self.up_rates
        }


def _korea_profile() -> TrialProfile:
    # uplink: near Table 2's Korea measurements (balanced, all slow);
    # downlink: skewed — Google Drive and Dropbox far ahead
    return TrialProfile(
        country="Korea",
        up_rates={
            "Google Drive": 0.45e6,
            "Dropbox": 0.30e6,
            "OneDrive": 0.28e6,
            "Box": 0.26e6,
        },
        down_rates={
            "Google Drive": 0.60e6,
            "Dropbox": 0.40e6,
            "OneDrive": 0.18e6,
            "Box": 0.15e6,
        },
        csp_rtts={
            "Google Drive": 0.071,
            "Dropbox": 0.137,
            "OneDrive": 0.142,
            "Box": 0.149,
        },
        # 100 Mbps residential fibre: never the bottleneck here
        client_up=100e6 / 8,
        client_down=100e6 / 8,
    )


def _us_profile() -> TrialProfile:
    # per-CSP links fast; the 10 Mbps residential uplink is what a
    # (2,4) upload saturates
    return TrialProfile(
        country="US",
        up_rates={
            "Dropbox": 1.5e6,
            "Google Drive": 0.72e6,
            "OneDrive": 0.7e6,
            "Box": 0.65e6,
        },
        down_rates={
            "Google Drive": 6.0e6,
            "Dropbox": 5.0e6,
            "OneDrive": 4.0e6,
            "Box": 2.0e6,
        },
        csp_rtts={
            "Google Drive": 0.024,
            "Dropbox": 0.046,
            "OneDrive": 0.047,
            "Box": 0.050,
        },
        client_up=10e6 / 8,
        client_down=100e6 / 8,
    )


TRIAL_PROFILES: dict[str, TrialProfile] = {
    "US": _us_profile(),
    "Korea": _korea_profile(),
}


def trial_environment(country: str) -> TrialProfile:
    """Look up a trial environment by country name."""
    profile = TRIAL_PROFILES.get(country)
    if profile is None:
        raise KeyError(
            f"no trial profile for {country!r}; have {sorted(TRIAL_PROFILES)}"
        )
    return profile
