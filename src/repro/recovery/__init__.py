"""repro.recovery — crash consistency for the CYRUS client.

Three cooperating pieces close the client-side crash window that
paper Section 5 leaves to lazy repair:

* :class:`IntentJournal` — a local write-ahead journal of every
  mutating operation's *intent* (which share objects it will create,
  which metadata node it will publish), appended before the providers
  are touched;
* :func:`recover_client` — startup replay that rolls each incomplete
  intent forward (metadata in hand → finish the publish) or back
  (scatter half-done → delete the recorded orphan shares), returning a
  :class:`RecoveryReport`;
* :func:`run_scrub` / :class:`Scrubber` — a budget-limited
  anti-entropy pass over the global chunk table that verifies share
  existence and integrity and eagerly regenerates what lazy migration
  would only fix at the next read.
"""

from repro.recovery.journal import (
    BEGIN,
    COMMIT,
    META_INTENT,
    META_PUBLISHED,
    SHARE_INTENT,
    SHARE_UPLOADED,
    STAGES,
    Intent,
    IntentJournal,
    JournalError,
    JournalRecord,
)
from repro.recovery.recover import (
    RECOVERY_ROLLBACK,
    RECOVERY_ROLLFORWARD,
    RecoveryReport,
    recover_client,
)
from repro.recovery.scrub import (
    SCRUB_SHARES_REPAIRED,
    SCRUB_SHARES_VERIFIED,
    Scrubber,
    ScrubReport,
    run_scrub,
)

__all__ = [
    "BEGIN",
    "COMMIT",
    "META_INTENT",
    "META_PUBLISHED",
    "SHARE_INTENT",
    "SHARE_UPLOADED",
    "STAGES",
    "Intent",
    "IntentJournal",
    "JournalError",
    "JournalRecord",
    "RECOVERY_ROLLBACK",
    "RECOVERY_ROLLFORWARD",
    "RecoveryReport",
    "recover_client",
    "SCRUB_SHARES_REPAIRED",
    "SCRUB_SHARES_VERIFIED",
    "Scrubber",
    "ScrubReport",
    "run_scrub",
]
