"""The write-ahead intent journal.

A CYRUS ``put`` is only durable once its metadata node is visible at
``t`` metadata slots; everything before that — the scattered chunk
shares — is invisible garbage if the client process dies mid-flight.
The journal closes that window with DepSky-style commit discipline made
explicit: before touching any provider, the client appends a ``begin``
record naming every share object it *intends* to create, then appends
progress records as the pipeline advances, and finally a ``commit``
record once local state reflects the published node.  On restart,
:mod:`repro.recovery.recover` replays any intent without a ``commit``.

Record stages, in pipeline order::

    begin(put|delete|gc|migrate)   what is about to happen + planned
                                   share placements (the rollback set)
    share-intent                   a failover re-planned one share onto
                                   a new CSP (extends the rollback set)
    share-uploaded(csp, object)    one share landed
    debt(chunk, missing, failed)   a chunk reached t but not n stored
                                   shares — a redundancy debt recovery
                                   must reconcile into the debt ledger
    meta-intent                    the encoded node about to be
                                   published (the roll-forward payload)
    meta-published                 >= t metadata shares landed
    commit                         local tree/table updated; intent done

Durability model: each record is one JSON line appended with flush +
fsync, so a crash can at worst tear the *final* line — the parser drops
an undecodable tail instead of failing.  The file is compacted
(committed intents dropped) through a temp file + ``os.replace``, the
same atomic-rename discipline the snapshot writer uses, so a crash
during compaction leaves either the old or the new journal, never a
mix.
"""

from __future__ import annotations

import json
import os
import threading
import uuid
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import CyrusError

#: Stage names, in pipeline order.
BEGIN = "begin"
SHARE_INTENT = "share-intent"
SHARE_UPLOADED = "share-uploaded"
DEBT = "debt"
META_INTENT = "meta-intent"
META_PUBLISHED = "meta-published"
COMMIT = "commit"

STAGES = (BEGIN, SHARE_INTENT, SHARE_UPLOADED, DEBT, META_INTENT,
          META_PUBLISHED, COMMIT)

#: Operations a ``begin`` record may name.
OPS = ("put", "delete", "gc", "migrate", "meta-repair")


class JournalError(CyrusError):
    """A malformed record reached encode/decode (never raised while
    parsing a journal file — torn or alien lines are skipped there)."""


@dataclass(frozen=True)
class JournalRecord:
    """One journal line.

    ``fields`` carries the stage-specific payload (placements, the
    encoded node, share coordinates); it must be JSON-serialisable.
    """

    intent_id: str
    stage: str
    seq: int = 0
    op: str = ""
    time: float = 0.0
    fields: dict = field(default_factory=dict)

    def encode(self) -> bytes:
        """One JSON line (newline-terminated), sorted keys."""
        if self.stage not in STAGES:
            raise JournalError(f"unknown journal stage {self.stage!r}")
        doc = {
            "id": self.intent_id,
            "seq": self.seq,
            "stage": self.stage,
            "time": self.time,
        }
        if self.op:
            doc["op"] = self.op
        if self.fields:
            doc["fields"] = self.fields
        try:
            return (json.dumps(doc, sort_keys=True,
                               separators=(",", ":")) + "\n").encode("utf-8")
        except (TypeError, ValueError) as exc:
            raise JournalError(f"unencodable journal record: {exc}") from exc

    @classmethod
    def decode(cls, line: bytes) -> "JournalRecord":
        """Parse one line; raises :class:`JournalError` on garbage."""
        try:
            doc = json.loads(line.decode("utf-8"))
            return cls(
                intent_id=str(doc["id"]),
                stage=str(doc["stage"]),
                seq=int(doc["seq"]),
                op=str(doc.get("op", "")),
                time=float(doc["time"]),
                fields=dict(doc.get("fields", {})),
            )
        except (UnicodeDecodeError, ValueError, KeyError, TypeError) as exc:
            raise JournalError(f"undecodable journal line: {exc}") from exc


@dataclass
class Intent:
    """All records of one intent, aggregated for recovery."""

    intent_id: str
    op: str
    records: list[JournalRecord] = field(default_factory=list)

    @property
    def committed(self) -> bool:
        return any(r.stage == COMMIT for r in self.records)

    def has_stage(self, stage: str) -> bool:
        return any(r.stage == stage for r in self.records)

    def stage_records(self, stage: str) -> list[JournalRecord]:
        return [r for r in self.records if r.stage == stage]

    def first(self, stage: str) -> JournalRecord | None:
        for record in self.records:
            if record.stage == stage:
                return record
        return None

    def planned_shares(self) -> list[tuple[str, str, str]]:
        """Every ``(chunk_id, csp, object)`` this intent may have
        created: the ``begin`` placements plus failover re-plans plus
        anything confirmed uploaded — the rollback set."""
        out: list[tuple[str, str, str]] = []
        seen: set[tuple[str, str]] = set()
        begin = self.first(BEGIN)
        sources: list[dict] = []
        if begin is not None:
            sources.extend(begin.fields.get("placements", ()))
        for record in self.records:
            if record.stage in (SHARE_INTENT, SHARE_UPLOADED):
                sources.append(record.fields)
        for entry in sources:
            try:
                chunk = str(entry["chunk"])
                csp = str(entry["csp"])
                obj = str(entry["object"])
            except (KeyError, TypeError):
                continue
            if (csp, obj) in seen:
                continue
            seen.add((csp, obj))
            out.append((chunk, csp, obj))
        return out


class IntentJournal:
    """Append-only JSONL intent journal with atomic compaction.

    Every append opens, writes one full line, flushes, fsyncs and
    closes — slow by database standards, but a CYRUS client journals a
    handful of records per put, and the open-per-write discipline means
    two client generations (the crashed one and its successor) can use
    the same path without handle coordination.
    """

    def __init__(self, path: str | Path, clock=None, fsync: bool = True,
                 compact_after: int = 256):
        self.path = Path(path)
        self.clock = clock
        self.fsync = fsync
        self.compact_after = max(1, compact_after)
        self._seq = self._max_seq() + 1
        self._commits_since_compact = 0
        # seq allocation + file append must be one atomic step: pool
        # workers journal share-uploaded records concurrently, and the
        # lock guarantees the on-disk seq order matches append order —
        # records of one intent stay ordered-per-intent (reentrant so
        # commit's record() nests)
        self._lock = threading.RLock()

    # -- writing ----------------------------------------------------------

    def _now(self) -> float:
        return self.clock.now() if self.clock is not None else 0.0

    def _append(self, record: JournalRecord) -> JournalRecord:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        blob = record.encode()
        with open(self.path, "ab") as handle:
            handle.write(blob)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        return record

    def begin(self, op: str, **fields) -> str:
        """Open a new intent; returns its id."""
        if op not in OPS:
            raise JournalError(f"unknown journal op {op!r}")
        intent_id = uuid.uuid4().hex[:16]
        with self._lock:
            record = JournalRecord(
                intent_id=intent_id, stage=BEGIN, seq=self._seq, op=op,
                time=self._now(), fields=fields,
            )
            self._seq += 1
            self._append(record)
        return intent_id

    def record(self, intent_id: str, stage: str, **fields) -> JournalRecord:
        """Append one progress record to an open intent."""
        with self._lock:
            record = JournalRecord(
                intent_id=intent_id, stage=stage, seq=self._seq,
                time=self._now(), fields=fields,
            )
            self._seq += 1
            return self._append(record)

    def commit(self, intent_id: str, outcome: str = "committed") -> None:
        """Close an intent; periodically compacts the file."""
        with self._lock:
            self.record(intent_id, COMMIT, outcome=outcome)
            self._commits_since_compact += 1
            if self._commits_since_compact >= self.compact_after:
                self.compact()

    # -- reading ----------------------------------------------------------

    def _parse(self) -> tuple[list[JournalRecord], int]:
        """All decodable records plus the count of skipped lines.

        A torn final line (the one partial write a crash can produce)
        and any corrupt interior line are skipped, not fatal: the
        journal must never be the component that prevents recovery.
        """
        if not self.path.exists():
            return [], 0
        records: list[JournalRecord] = []
        skipped = 0
        for line in self.path.read_bytes().split(b"\n"):
            if not line.strip():
                continue
            try:
                records.append(JournalRecord.decode(line))
            except JournalError:
                skipped += 1
        records.sort(key=lambda r: r.seq)
        return records, skipped

    def _max_seq(self) -> int:
        records, _ = self._parse()
        return max((r.seq for r in records), default=-1)

    def intents(self) -> list[Intent]:
        """All intents on disk, in begin order."""
        records, _ = self._parse()
        by_id: dict[str, Intent] = {}
        for record in records:
            intent = by_id.get(record.intent_id)
            if intent is None:
                intent = by_id[record.intent_id] = Intent(
                    intent_id=record.intent_id, op=record.op,
                )
            if record.op and not intent.op:
                intent.op = record.op
            intent.records.append(record)
        return list(by_id.values())

    def incomplete(self) -> list[Intent]:
        """Intents with a ``begin`` but no ``commit`` — the replay set.

        Records without a ``begin`` (its line was the torn one) are
        unreplayable and ignored; their shares are scrub's problem.
        """
        return [
            i for i in self.intents()
            if not i.committed and i.first(BEGIN) is not None
        ]

    # -- compaction -------------------------------------------------------

    def compact(self) -> int:
        """Drop committed intents; returns records removed.

        Incomplete intents keep every record.  Atomic: the survivors are
        written to a temp file that replaces the journal in one rename.
        """
        records, skipped = self._parse()
        keep_ids = {i.intent_id for i in self.intents() if not i.committed}
        survivors = [r for r in records if r.intent_id in keep_ids]
        removed = len(records) - len(survivors) + skipped
        if removed == 0:
            self._commits_since_compact = 0
            return 0
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "wb") as handle:
            for record in survivors:
                handle.write(record.encode())
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        self._commits_since_compact = 0
        return removed
