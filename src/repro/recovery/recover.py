"""Startup replay of incomplete journal intents.

The commit protocol (data before metadata, journal before data) leaves
exactly three states a crashed operation can be found in, and each has
one correct repair:

* **metadata published** (``meta-published`` present) — the operation
  is durable and visible to every other client; recovery only has to
  acknowledge it (``commit``).
* **metadata in hand but not published** (``meta-intent`` present) —
  every chunk share landed (the pipeline builds the node only after
  scatter resolves), so roll *forward*: re-publish the journaled node
  verbatim.  Metadata share names encode the node id and slot, so a
  re-publish after a partial publish overwrites identical bytes —
  idempotent.
* **no metadata record** — the scatter may have half-happened; roll
  *back*: delete every share object the intent planned or confirmed,
  skipping chunks that the (freshly synced) chunk table shows are
  referenced by some published node — those shares are live data,
  content-addressed and byte-identical no matter which client wrote
  them.

``gc`` intents roll forward (re-delete the recorded doomed chunks that
are still unreferenced); ``migrate`` intents reconcile (adopt the moved
share into the chunk table if it landed, delete it if its chunk is no
longer known); ``meta-repair`` intents roll forward (re-publish the
journaled node verbatim — metadata slot names are fixed per node and
index, so the replay overwrites identical-meaning bytes and can never
duplicate a share).

Every repair action is idempotent — deletes tolerate already-gone
objects, re-publishes overwrite identical bytes, adoption is a set
insert — so a crash *during* recovery is recovered by simply running
recovery again.  The ``commit`` record is written only after an
intent's repairs all succeeded; an intent whose repair hits an
unreachable provider stays incomplete and is retried on the next run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.naming import chunk_share_object_name
from repro.core.transfer import OpKind, TransferOp
from repro.errors import CSPError, CyrusError
from repro.metadata.codec import decode_node
from repro.obs import span_if
from repro.recovery.journal import (
    BEGIN,
    DEBT,
    META_INTENT,
    META_PUBLISHED,
    IntentJournal,
)

#: Metric names (mirrors the repro.obs constant style).
RECOVERY_ROLLFORWARD = "cyrus_recovery_rollforward_total"
RECOVERY_ROLLBACK = "cyrus_recovery_rollback_total"
RECOVERY_SHARES_DELETED = "cyrus_recovery_shares_deleted_total"


@dataclass
class RecoveryReport:
    """What one recovery pass found and repaired."""

    intents_total: int = 0
    rolled_forward: int = 0
    rolled_back: int = 0
    meta_republished: int = 0
    shares_deleted: int = 0
    placements_adopted: int = 0
    debts_reconciled: int = 0
    incomplete_remaining: int = 0
    actions: tuple[str, ...] = ()

    @property
    def clean(self) -> bool:
        return self.intents_total == 0


def recover_client(client, journal: IntentJournal | None = None) -> RecoveryReport:
    """Replay every incomplete intent against a restarted client.

    Pass the journal explicitly only when the client was built without
    one attached.  Safe to call any number of times: once an intent is
    committed it never replays again, so a second run is a no-op.
    """
    if journal is None:
        journal = getattr(client, "journal", None)
    if journal is None:
        raise CyrusError("recovery needs an intent journal")
    incomplete = journal.incomplete()
    report = RecoveryReport(intents_total=len(incomplete))
    if not incomplete:
        return report
    with span_if(client.obs, "recover", intents=len(incomplete)):
        # the reachability ground truth every rule below consults:
        # which chunks/nodes did reach published metadata
        try:
            client.sync()
        except CyrusError:
            pass  # degraded recovery: local tree is the best view we have
        actions: list[str] = []
        for intent in incomplete:
            try:
                if intent.op in ("put", "delete"):
                    done = _recover_publish(client, journal, intent,
                                            report, actions)
                elif intent.op == "gc":
                    done = _recover_gc(client, journal, intent,
                                       report, actions)
                elif intent.op == "migrate":
                    done = _recover_migrate(client, journal, intent,
                                            report, actions)
                elif intent.op == "meta-repair":
                    done = _recover_meta_repair(client, journal, intent,
                                                report, actions)
                else:
                    journal.commit(intent.intent_id, outcome="unknown-op")
                    actions.append(f"{intent.intent_id}: unknown op "
                                   f"{intent.op!r}, closed")
                    done = True
            except CyrusError as exc:
                actions.append(f"{intent.intent_id}: repair failed ({exc}); "
                               f"will retry next recovery")
                done = False
            if not done:
                report.incomplete_remaining += 1
        report.actions = tuple(actions)
    return report


# -- per-op repair rules ---------------------------------------------------


def _reconcile_debts(client, intent, report, actions) -> None:
    """Fold an intent's journaled redundancy debts into the ledger.

    The uploader records debts in both the journal (inside the intent)
    and the ledger; a crash between the two appends leaves only the
    journal copy, so roll-forward re-records it.  The ledger merges
    per chunk, so re-recording an already-present debt is a no-op.
    """
    ledger = getattr(client, "debt_ledger", None)
    if ledger is None:
        return
    for record in intent.stage_records(DEBT):
        try:
            chunk_id = str(record.fields["chunk"])
            missing = tuple(int(i) for i in record.fields["missing"])
            failed = tuple(str(c) for c in record.fields.get("failed", ()))
        except (KeyError, TypeError, ValueError):
            continue
        ledger.record(chunk_id, missing=missing, failed_csps=failed)
        report.debts_reconciled += 1
        actions.append(f"debt {chunk_id[:8]}: reconciled into ledger "
                       f"(missing {list(missing)})")


def _recover_publish(client, journal, intent, report, actions) -> bool:
    """Roll a crashed put/delete forward or back."""
    label = intent.first(BEGIN).fields.get("name", "?")
    if intent.has_stage(META_PUBLISHED):
        # durable before the crash; the sync above already folded it in
        _reconcile_debts(client, intent, report, actions)
        journal.commit(intent.intent_id, outcome="rolled-forward")
        report.rolled_forward += 1
        client.obs.metrics.inc(RECOVERY_ROLLFORWARD, op=intent.op)
        actions.append(f"{intent.op} {label!r}: metadata was already "
                       f"published; acknowledged")
        return True
    meta = intent.first(META_INTENT)
    if meta is not None:
        # all shares landed; finish the publish with the journaled node
        node = decode_node(str(meta.fields["node"]).encode("utf-8"))
        client.uploader._publish(node)  # raises if < t slots reachable
        client.tree.add(node)
        if intent.op == "put":
            client.chunk_table.record_node(node)
        _reconcile_debts(client, intent, report, actions)
        journal.commit(intent.intent_id, outcome="rolled-forward")
        report.rolled_forward += 1
        report.meta_republished += 1
        client.obs.metrics.inc(RECOVERY_ROLLFORWARD, op=intent.op)
        actions.append(f"{intent.op} {label!r}: re-published metadata "
                       f"node {node.node_id[:12]}")
        return True
    # no metadata was attempted: undo the scatter
    deleted, clean = _delete_unreferenced(client, intent.planned_shares())
    report.shares_deleted += deleted
    if deleted:
        client.obs.metrics.inc(RECOVERY_SHARES_DELETED, deleted)
    if not clean:
        actions.append(f"{intent.op} {label!r}: rollback incomplete "
                       f"(provider unreachable); will retry")
        return False
    journal.commit(intent.intent_id, outcome="rolled-back")
    report.rolled_back += 1
    client.obs.metrics.inc(RECOVERY_ROLLBACK, op=intent.op)
    actions.append(f"{intent.op} {label!r}: rolled back "
                   f"({deleted} orphaned share(s) deleted)")
    return True


def _delete_unreferenced(client, shares) -> tuple[int, bool]:
    """Delete planned share objects whose chunks reached no published
    node; returns (deleted count, all resolved)."""
    ops = []
    for chunk_id, csp_id, obj_name in shares:
        if client.chunk_table.is_stored(chunk_id):
            # another intent (or client) published this chunk — the
            # share bytes are content-addressed, hence identical: live
            continue
        try:
            client.cloud.status_of(csp_id)
        except KeyError:
            continue  # a CSP this client no longer knows
        ops.append(TransferOp(kind=OpKind.DELETE, csp_id=csp_id,
                              name=obj_name, chunk_id=chunk_id))
    if not ops:
        return 0, True
    results = client.engine.execute(ops)
    deleted = sum(1 for r in results if r.ok)
    clean = all(
        r.ok or r.error_type == "ObjectNotFoundError" for r in results
    )
    return deleted, clean


def _recover_gc(client, journal, intent, report, actions) -> bool:
    """Re-run the recorded deletions of a crashed collection pass."""
    referenced = client.tree.referenced_chunks()
    deleted = 0
    clean = True
    for entry in intent.first(BEGIN).fields.get("chunks", ()):
        chunk_id = str(entry.get("chunk", ""))
        if not chunk_id or chunk_id in referenced:
            continue  # resurrected (or garbage record): leave it alone
        ops = []
        for placement in entry.get("placements", ()):
            try:
                index, csp_id = int(placement[0]), str(placement[1])
                client.cloud.status_of(csp_id)
            except (KeyError, TypeError, ValueError, IndexError):
                continue
            ops.append(TransferOp(
                kind=OpKind.DELETE, csp_id=csp_id,
                name=chunk_share_object_name(index, chunk_id),
                chunk_id=chunk_id,
            ))
        results = client.engine.execute(ops)
        deleted += sum(1 for r in results if r.ok)
        if not all(r.ok or r.error_type == "ObjectNotFoundError"
                   for r in results):
            clean = False
        client.chunk_table.forget(chunk_id)
    report.shares_deleted += deleted
    if deleted:
        client.obs.metrics.inc(RECOVERY_SHARES_DELETED, deleted)
    if not clean:
        actions.append("gc: re-deletion incomplete (provider unreachable); "
                       "will retry")
        return False
    journal.commit(intent.intent_id, outcome="rolled-forward")
    report.rolled_forward += 1
    client.obs.metrics.inc(RECOVERY_ROLLFORWARD, op="gc")
    actions.append(f"gc: re-deleted {deleted} share(s) of recorded "
                   f"unreferenced chunks")
    return True


def _recover_meta_repair(client, journal, intent, report, actions) -> bool:
    """Roll a crashed metadata re-dispersal forward.

    The intent carries the node verbatim, so the replay simply
    re-publishes it across every slot — an idempotent overwrite (the
    repaired slots get a fresh envelope stamp; shares of identical
    plaintext group together at fetch regardless of stamp).  The open
    debt was never retired, so the next repair tick re-censuses and
    retires it once the slots verify.
    """
    begin = intent.first(BEGIN)
    node_id = str(begin.fields.get("node_id", ""))[:12]
    try:
        node = decode_node(str(begin.fields["node"]).encode("utf-8"))
    except (KeyError, CyrusError):
        # an unreadable intent cannot be replayed; the debt ledger still
        # holds the obligation, so closing the intent loses nothing
        journal.commit(intent.intent_id, outcome="unreadable")
        actions.append(f"meta-repair {node_id}: unreadable intent, closed "
                       f"(debt ledger still owns the deficit)")
        return True
    client.uploader._publish(node)  # raises if < t slots reachable
    client.tree.add(node)
    journal.commit(intent.intent_id, outcome="rolled-forward")
    report.rolled_forward += 1
    report.meta_republished += 1
    client.obs.metrics.inc(RECOVERY_ROLLFORWARD, op="meta-repair")
    actions.append(f"meta-repair {node_id}: re-published metadata node")
    return True


def _recover_migrate(client, journal, intent, report, actions) -> bool:
    """Reconcile a crashed lazy migration: adopt landed shares of live
    chunks, delete landed shares of forgotten chunks."""
    begin = intent.first(BEGIN)
    chunk_id = str(begin.fields.get("chunk", ""))
    adopted = 0
    deleted = 0
    for move in begin.fields.get("moves", ()):
        try:
            index, csp_id, obj_name = int(move[0]), str(move[1]), str(move[2])
        except (TypeError, ValueError, IndexError):
            continue
        try:
            provider = client.cloud.provider(csp_id)
            exists = any(info.name == obj_name
                         for info in provider.list(prefix=obj_name))
        except (KeyError, CSPError):
            continue  # unreachable: a live share there is never harmful
        if not exists:
            continue
        if client.chunk_table.is_stored(chunk_id):
            location = client.chunk_table.get(chunk_id)
            if (index, csp_id) not in location.placements:
                client.chunk_table.add_placement(chunk_id, index, csp_id)
                adopted += 1
        else:
            [result] = client.engine.execute([TransferOp(
                kind=OpKind.DELETE, csp_id=csp_id, name=obj_name,
                chunk_id=chunk_id,
            )])
            if result.ok:
                deleted += 1
    report.placements_adopted += adopted
    report.shares_deleted += deleted
    journal.commit(intent.intent_id, outcome="rolled-forward")
    report.rolled_forward += 1
    client.obs.metrics.inc(RECOVERY_ROLLFORWARD, op="migrate")
    actions.append(f"migrate {chunk_id[:8]}: adopted {adopted}, "
                   f"deleted {deleted} share(s)")
    return True
