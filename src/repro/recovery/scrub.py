"""Anti-entropy scrub: find and repair share damage before a read does.

The paper repairs lazily — a download that notices a share stranded on
a dead CSP regenerates it (Section 5.5) — which means a file nobody
reads silently decays as providers fail.  The scrub promotes that
repair into a proactive pass over the :class:`GlobalChunkTable`:

1. **Census** (one ``list`` per active CSP, no data transfer): build
   the ground-truth object inventory, adopt shares the table does not
   know about (a crashed migration that landed), flag *orphans* —
   share-shaped objects no known chunk accounts for — and flag
   recorded placements whose object is gone.
2. **Verify + repair** (budgeted): walk chunks round-robin from a
   persistent cursor; for each, download its present shares, find a
   verifying ``t``-subset against the chunk's content hash, and
   re-upload every index that is missing, corrupt, or stranded on an
   unusable CSP — in place when the recorded CSP is healthy, onto a
   consistent-hash replacement otherwise.  Repairs are journaled as
   ``migrate`` intents so a crash mid-repair is recovered like any
   other migration.

The budget counts share *transfers* (downloads + uploads), the unit
that actually costs money and time at a provider; a
:class:`Scrubber` carries the cursor between slices so a small
per-tick budget still covers the whole table eventually.

Orphans are reported, not deleted, by default: a concurrent client
mid-``put`` has (by design) shares on CSPs before any metadata names
them, and only the operator can rule that out.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.core.naming import chunk_share_object_name
from repro.core.transfer import OpKind, TransferOp
from repro.core.uploader import get_sharer
from repro.erasure import Share
from repro.errors import CSPError, CyrusError
from repro.metadata.codec import unpack_meta_share
from repro.metadata.store import META_CORRUPT_SHARES
from repro.obs import span_if
from repro.util.hashing import sha1_hex

#: Metric names (mirrors the repro.obs constant style).
SCRUB_SHARES_VERIFIED = "cyrus_scrub_shares_verified_total"
SCRUB_SHARES_REPAIRED = "cyrus_scrub_shares_repaired_total"
SCRUB_ORPHANS_FOUND = "cyrus_scrub_orphans_total"

#: Chunk-share object names are bare 40-hex digests (see repro.core.naming).
_SHARE_NAME = re.compile(r"^[0-9a-f]{40}$")


@dataclass
class ScrubReport:
    """What one scrub slice saw and fixed."""

    chunks_total: int = 0
    chunks_scanned: int = 0
    shares_verified: int = 0
    shares_missing: int = 0
    shares_corrupt: int = 0
    shares_repaired: int = 0
    placements_adopted: int = 0
    orphans: tuple[tuple[str, str], ...] = ()  # (csp, object)
    orphans_deleted: int = 0
    unrecoverable_chunks: tuple[str, ...] = ()
    unreachable_csps: tuple[str, ...] = ()
    cursor: int = 0
    budget_exhausted: bool = False
    # metadata plane census + verify
    meta_nodes_scanned: int = 0
    meta_shares_verified: int = 0
    meta_shares_missing: int = 0
    meta_shares_corrupt: int = 0
    meta_debts_recorded: int = 0
    meta_cursor: int = 0

    @property
    def complete(self) -> bool:
        return self.chunks_scanned >= self.chunks_total

    @property
    def healthy(self) -> bool:
        return (not self.unrecoverable_chunks and not self.orphans
                and self.shares_missing == self.shares_repaired == 0
                and self.shares_corrupt == 0
                and self.meta_shares_missing == 0
                and self.meta_shares_corrupt == 0)


def run_scrub(
    client,
    budget_shares: int | None = None,
    cursor: int = 0,
    repair: bool = True,
    delete_orphans: bool = False,
    journal=None,
    meta_cursor: int = 0,
    scrub_metadata: bool = True,
) -> ScrubReport:
    """One scrub pass (or budget-limited slice) over the chunk table.

    ``budget_shares`` caps share downloads + repair uploads (None =
    unbounded, i.e. a full-table integrity pass); ``cursor`` is where
    in the (sorted) chunk list to start, taken from the previous
    slice's report.  With ``repair=False`` the pass only reports.

    With ``scrub_metadata`` (the default) the pass also runs a census +
    budgeted verify over the metadata plane from ``meta_cursor``:
    every known node's shares are checked against the per-slot listings
    and, within a metadata budget of the same size (a separate pool, so
    neither plane starves the other), downloaded and compared to
    regenerated truth.
    Damage becomes ``meta`` repair debts — re-dispersal itself is
    :func:`repro.redundancy.repair.run_repair`'s job — and corrupt
    shares are attributed to their CSP exactly like a decode-time
    verification failure.
    """
    if journal is None:
        journal = getattr(client, "journal", None)
    report = ScrubReport(cursor=cursor)
    obs = client.obs
    with span_if(obs, "scrub", budget=budget_shares or 0):
        listings, unreachable = _census(client)
        report.unreachable_csps = tuple(sorted(unreachable))
        chunk_ids = sorted(client.chunk_table.all_chunk_ids())
        report.chunks_total = len(chunk_ids)
        report.placements_adopted = _adopt_placements(client, listings)
        report.orphans = _find_orphans(client, listings, chunk_ids)
        if report.orphans:
            obs.metrics.inc(SCRUB_ORPHANS_FOUND, len(report.orphans))
        if delete_orphans and report.orphans:
            report.orphans_deleted = _delete_orphans(client, report.orphans)
        # round-robin verification slice from the cursor
        budget = [budget_shares if budget_shares is not None else None]
        # the metadata pass gets its own budget pool of the same size:
        # metadata shares are tiny, and sharing one pool would let
        # either plane starve the other's sweep indefinitely
        if scrub_metadata:
            meta_budget = [budget_shares]
            report.meta_cursor = _scrub_metadata(
                client, listings, unreachable, meta_budget, report,
                meta_cursor,
            )
        else:
            report.meta_cursor = meta_cursor
        start = cursor % len(chunk_ids) if chunk_ids else 0
        rotation = chunk_ids[start:] + chunk_ids[:start]
        unrecoverable: list[str] = []
        scanned = 0
        for chunk_id in rotation:
            if budget[0] is not None and budget[0] <= 0:
                report.budget_exhausted = True
                break
            _scrub_chunk(client, chunk_id, listings, unreachable, budget,
                         repair, journal, report, unrecoverable)
            scanned += 1
        report.chunks_scanned = scanned
        report.cursor = ((start + scanned) % len(chunk_ids)
                         if chunk_ids else 0)
        report.unrecoverable_chunks = tuple(unrecoverable)
        obs.metrics.inc(SCRUB_SHARES_VERIFIED, report.shares_verified)
        obs.metrics.inc(SCRUB_SHARES_REPAIRED, report.shares_repaired)
    return report


@dataclass
class Scrubber:
    """Cursor-carrying scrub driver for periodic slices.

    One instance per client: each :meth:`run_slice` continues where the
    previous one stopped, so a :class:`repro.core.daemon.SyncDaemon`
    tick with a small budget still sweeps the whole table over enough
    ticks.
    """

    client: object
    budget_shares: int | None = 64
    repair: bool = True
    delete_orphans: bool = False
    cursor: int = field(default=0)
    scrub_metadata: bool = True
    meta_cursor: int = field(default=0)

    def run_slice(self) -> ScrubReport:
        report = run_scrub(
            self.client, budget_shares=self.budget_shares,
            cursor=self.cursor, repair=self.repair,
            delete_orphans=self.delete_orphans,
            meta_cursor=self.meta_cursor,
            scrub_metadata=self.scrub_metadata,
        )
        self.cursor = report.cursor
        self.meta_cursor = report.meta_cursor
        return report


# -- phase 1: census -------------------------------------------------------


def _census(client) -> tuple[dict[str, set[str]], set[str]]:
    """One listing per active CSP: {csp: object names}, unreachable set."""
    listings: dict[str, set[str]] = {}
    unreachable: set[str] = set()
    for csp_id in client.cloud.active_csps():
        try:
            listings[csp_id] = {
                info.name for info in client.cloud.provider(csp_id).list(prefix="")
            }
        except CSPError:
            unreachable.add(csp_id)
    return listings, unreachable


def _expected_names(client, chunk_ids) -> dict[str, tuple[str, int]]:
    """Every share object name any known chunk could legitimately have."""
    expected: dict[str, tuple[str, int]] = {}
    for chunk_id in chunk_ids:
        location = client.chunk_table.get(chunk_id)
        for index in range(location.n):
            expected[chunk_share_object_name(index, chunk_id)] = (
                chunk_id, index,
            )
    return expected


def _adopt_placements(client, listings) -> int:
    """Record shares that exist on disk but not in the table (e.g. a
    migration that crashed after its upload landed)."""
    adopted = 0
    expected = _expected_names(client, client.chunk_table.all_chunk_ids())
    for csp_id, names in listings.items():
        for name in names:
            hit = expected.get(name)
            if hit is None:
                continue
            chunk_id, index = hit
            location = client.chunk_table.get(chunk_id)
            if (index, csp_id) not in location.placements:
                client.chunk_table.add_placement(chunk_id, index, csp_id)
                adopted += 1
    return adopted


def _find_orphans(client, listings, chunk_ids) -> tuple[tuple[str, str], ...]:
    """Share-shaped objects no known chunk accounts for."""
    expected = _expected_names(client, chunk_ids)
    orphans: list[tuple[str, str]] = []
    for csp_id in sorted(listings):
        for name in sorted(listings[csp_id]):
            if _SHARE_NAME.match(name) and name not in expected:
                orphans.append((csp_id, name))
    return tuple(orphans)


def _delete_orphans(client, orphans) -> int:
    results = client.engine.execute([
        TransferOp(kind=OpKind.DELETE, csp_id=csp_id, name=name)
        for csp_id, name in orphans
    ])
    return sum(1 for r in results if r.ok)


# -- phase 1.5: metadata census + verify -----------------------------------


def _scrub_metadata(client, listings, unreachable, budget, report,
                    meta_cursor) -> int:
    """Walk known nodes round-robin; verify their shares within budget.

    Returns the next metadata cursor.  Reuses the census listings (the
    per-CSP ``list(prefix="")`` already covers ``md-*`` objects), so
    the missing-share check is free; only the byte-level verify spends
    budget.
    """
    node_ids = sorted(client.tree.node_ids())
    if not node_ids:
        return 0
    start = meta_cursor % len(node_ids)
    rotation = node_ids[start:] + node_ids[:start]
    scanned = 0
    for node_id in rotation:
        if budget[0] is not None and budget[0] <= 0:
            report.budget_exhausted = True
            break
        _scrub_node_shares(client, node_id, listings, budget, report)
        scanned += 1
    report.meta_nodes_scanned = scanned
    return (start + scanned) % len(node_ids)


def _scrub_node_shares(client, node_id, listings, budget, report) -> None:
    store = client.store
    try:
        node = client.tree.get(node_id)
    except CyrusError:
        return
    missing: set[int] = set()
    corrupt_csps: set[str] = set()
    # (csp, name, index, true payload bytes) per judgeable slot
    probe: list[tuple[str, str, int, bytes]] = []
    for provider, name, share in store.shares_for(node):
        csp_id = provider.csp_id
        if csp_id not in listings:
            continue  # unlisted slot this pass: no verdict
        if name not in listings[csp_id]:
            report.meta_shares_missing += 1
            missing.add(share.index)
            continue
        probe.append((csp_id, name, share.index, share.data))
    if budget[0] is not None:
        probe = probe[:max(0, budget[0])]
        budget[0] -= len(probe)
    ops = [
        TransferOp(kind=OpKind.GET_META, csp_id=csp_id, name=name)
        for csp_id, name, _index, _truth in probe
    ]
    for (csp_id, name, index, truth), result in zip(
        probe, client.engine.execute(ops)
    ):
        if not result.ok:
            report.meta_shares_missing += 1
            missing.add(index)
            continue
        report.meta_shares_verified += 1
        try:
            frame = unpack_meta_share(result.data)
            intact = frame.payload_intact() and frame.payload == truth
        except CyrusError:
            intact = False
        if intact:
            continue
        report.meta_shares_corrupt += 1
        missing.add(index)
        corrupt_csps.add(csp_id)
        health = getattr(client, "health", None)
        if health is not None:
            health.record_corruption(
                csp_id,
                detail=f"scrub: metadata {node_id[:8]} share {index} corrupt",
            )
        client.obs.metrics.inc(META_CORRUPT_SHARES, csp=csp_id)
    if missing:
        store._record_meta_debt(node_id, sorted(missing),
                                sorted(corrupt_csps))
        report.meta_debts_recorded += 1


# -- phase 2: verify + repair ----------------------------------------------


def _scrub_chunk(client, chunk_id, listings, unreachable, budget,
                 repair, journal, report, unrecoverable) -> None:
    location = client.chunk_table.get(chunk_id)
    share_size = max(1, -(-location.size // location.t))

    def usable(csp_id: str) -> bool:
        return csp_id in listings  # active and listed this pass

    present: list[tuple[int, str]] = []   # recorded, object exists
    recorded_at: dict[int, str] = {}
    for index, csp_id in location.placements:
        recorded_at.setdefault(index, csp_id)
        name = chunk_share_object_name(index, chunk_id)
        if usable(csp_id) and name in listings[csp_id]:
            present.append((index, csp_id))
        elif usable(csp_id):
            report.shares_missing += 1  # healthy CSP, object gone

    # download the present shares (the integrity half of the check)
    take = present
    if budget[0] is not None:
        take = present[:max(0, budget[0])]
        budget[0] -= len(take)
    ops = [
        TransferOp(kind=OpKind.GET, csp_id=csp_id,
                   name=chunk_share_object_name(index, chunk_id),
                   size=share_size, chunk_id=chunk_id)
        for index, csp_id in take
    ]
    fetched: dict[int, bytes] = {}
    for (index, _csp), result in zip(take, client.engine.execute(ops)):
        if result.ok:
            fetched[index] = result.data
    shares = [
        Share(index=i, data=blob, t=location.t, n=location.n,
              chunk_size=location.size)
        for i, blob in sorted(fetched.items())
    ]
    sharer = get_sharer(client.config.key, location.t, location.n)
    try:
        plaintext = sharer.join_verified(
            shares, verify=lambda pt: sha1_hex(pt) == chunk_id,
        )
    except CyrusError:
        unrecoverable.append(chunk_id)
        return
    # classify each downloaded share against its true bytes
    good: dict[int, str] = {}
    corrupt: list[tuple[int, str]] = []
    for index, csp_id in take:
        if index not in fetched:
            report.shares_missing += 1
            continue
        truth = sharer.split_indices(plaintext, [index])[0].data
        report.shares_verified += 1
        if fetched[index] == truth:
            good[index] = csp_id
        else:
            report.shares_corrupt += 1
            corrupt.append((index, csp_id))
            # same attribution path as decode-time verification: emit
            # corrupt_share, quarantine repeat offenders
            health = getattr(client, "health", None)
            if health is not None:
                health.record_corruption(
                    csp_id,
                    detail=f"scrub: chunk {chunk_id[:8]} share {index} corrupt",
                )
    if not repair:
        return
    # regenerate every index not verifiably held on a healthy CSP
    moves: list[tuple[int, str]] = []  # (index, target csp)
    holding = set(good.values())
    for index in range(location.n):
        if index in good:
            continue
        target = recorded_at.get(index)
        if target is not None and not usable(target):
            target = None  # stranded on a failed/removed/unlisted CSP
        if target is None:
            target = client.cloud.replacement_csp(
                chunk_id, holding=holding,
                exclude=unreachable | {c for _i, c in corrupt},
            )
        if target is None:
            continue  # no independent healthy CSP left; stays degraded
        moves.append((index, target))
        holding.add(target)
    if not moves:
        return
    if budget[0] is not None:
        moves = moves[:max(0, budget[0])]
        budget[0] -= len(moves)
        if not moves:
            report.budget_exhausted = True
            return
    intent_id = None
    if journal is not None:
        intent_id = journal.begin("migrate", chunk=chunk_id, moves=[
            [index, csp_id, chunk_share_object_name(index, chunk_id)]
            for index, csp_id in moves
        ])
    ops = [
        TransferOp(kind=OpKind.PUT, csp_id=csp_id,
                   name=chunk_share_object_name(index, chunk_id),
                   data=sharer.split_indices(plaintext, [index])[0].data,
                   chunk_id=chunk_id)
        for index, csp_id in moves
    ]
    for (index, csp_id), result in zip(moves, client.engine.execute(ops)):
        if not result.ok:
            continue
        if (index, csp_id) not in location.placements:
            client.chunk_table.add_placement(chunk_id, index, csp_id)
        if intent_id is not None:
            journal.record(intent_id, "share-uploaded", chunk=chunk_id,
                           index=index, csp=csp_id,
                           object=chunk_share_object_name(index, chunk_id))
        report.shares_repaired += 1
    if intent_id is not None:
        journal.commit(intent_id)
