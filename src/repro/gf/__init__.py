"""Galois field GF(2^8) arithmetic.

This package implements the finite-field math underlying CYRUS's
non-systematic Reed--Solomon secret sharing (paper Section 5.1, Figure 5).
It provides scalar operations, vectorised numpy kernels, and matrix
algebra (multiplication, inversion, Vandermonde construction) over
GF(2^8) with the standard AES polynomial 0x11B.
"""

from repro.gf.field import (
    GF_ORDER,
    GF_POLY,
    gf_add,
    gf_div,
    gf_inv,
    gf_mul,
    gf_pow,
)
from repro.gf.matrix import (
    gf_mat_inv,
    gf_mat_mul,
    gf_mat_rank,
    gf_mat_vec,
    vandermonde,
)
from repro.gf.tables import EXP_TABLE, LOG_TABLE

__all__ = [
    "GF_ORDER",
    "GF_POLY",
    "EXP_TABLE",
    "LOG_TABLE",
    "gf_add",
    "gf_mul",
    "gf_div",
    "gf_inv",
    "gf_pow",
    "gf_mat_mul",
    "gf_mat_vec",
    "gf_mat_inv",
    "gf_mat_rank",
    "vandermonde",
]
