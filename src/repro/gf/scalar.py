"""Pure-Python GF(2^8) coding kernels — the fallback and the oracle.

Everything in this module runs on plain Python ints, lists and
bytearrays: no numpy import, no vectorisation, one field operation per
byte.  That makes it the slowest codec backend by two orders of
magnitude — and exactly why it exists:

* **Fallback** — :mod:`repro.erasure.rs` selects this backend when
  numpy is unavailable or when ``CYRUS_CODEC=scalar`` (or
  ``CYRUS_NO_NUMPY_ACCEL=1``) is set, so the whole client keeps working
  with zero native dependencies.
* **Oracle** — the golden-vector and hypothesis equivalence suites
  decode/encode through these loops and demand byte-identical output
  from the vectorised kernels in :mod:`repro.gf.vector`.  A silent
  wire-format drift in the fast path cannot survive a comparison
  against code this simple.

The tables are rebuilt here from first principles (same generator 0x03
and AES polynomial 0x11B as :mod:`repro.gf.tables`) rather than
converted from the numpy arrays, so the two implementations share no
code that could hide a common bug.
"""

from __future__ import annotations

from typing import Sequence

GF_POLY = 0x11B
GF_GENERATOR = 0x03


def _build_tables() -> tuple[list[int], list[int]]:
    exp = [0] * 510
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x2 = x << 1
        if x2 & 0x100:
            x2 ^= GF_POLY
        x = x2 ^ x
    exp[255:510] = exp[0:255]
    return exp, log


EXP, LOG = _build_tables()

#: Lazily-built multiplication rows: _MUL_ROWS[c][b] == c * b in GF(2^8).
_MUL_ROWS: dict[int, bytes] = {}


def mul(a: int, b: int) -> int:
    """Field multiplication of two elements."""
    if a == 0 or b == 0:
        return 0
    return EXP[LOG[a] + LOG[b]]


def inv(a: int) -> int:
    """Multiplicative inverse; raises ZeroDivisionError for zero."""
    if a == 0:
        raise ZeroDivisionError("zero has no inverse in GF(2^8)")
    return EXP[255 - LOG[a]]


def mul_row(c: int) -> bytes:
    """The 256-entry row ``[c * b for b in range(256)]`` as bytes."""
    row = _MUL_ROWS.get(c)
    if row is None:
        row = bytes(mul(c, b) for b in range(256))
        _MUL_ROWS[c] = row
    return row


def stripe_rows(data, t: int) -> list[bytes]:
    """Pad and split chunk bytes into ``t`` equal-length stripes.

    Mirrors the vectorised codec's ``(t, stripe_len)`` reshape: row j is
    ``data[j*L : (j+1)*L]`` zero-padded to L = ceil(len/t) (one zero
    column for empty input).
    """
    raw = bytes(data)
    stripe_len = max(1, -(-len(raw) // t))
    padded = raw.ljust(t * stripe_len, b"\x00")
    return [padded[j * stripe_len : (j + 1) * stripe_len] for j in range(t)]


def combine(coeffs: Sequence[int], stripes: Sequence[bytes]) -> bytearray:
    """XOR-accumulate ``sum_j coeffs[j] * stripes[j]`` byte by byte."""
    acc = bytearray(len(stripes[0]) if stripes else 0)
    for c, row in zip(coeffs, stripes):
        if c == 0:
            continue
        tbl = mul_row(c)
        for k, b in enumerate(row):
            acc[k] ^= tbl[b]
    return acc


def matmul_rows(
    matrix: Sequence[Sequence[int]], stripes: Sequence[bytes]
) -> list[bytearray]:
    """Row-by-row matrix product over GF(2^8): out[i] = matrix[i] . stripes."""
    return [combine(row, stripes) for row in matrix]


def vandermonde_rows(points: Sequence[int], width: int) -> list[list[int]]:
    """Vandermonde matrix rows V[i][j] = points[i] ** j.

    Same validity rules as :func:`repro.gf.matrix.vandermonde`:
    distinct non-zero evaluation points.
    """
    pts = list(points)
    if len(set(pts)) != len(pts):
        raise ValueError("Vandermonde points must be distinct")
    if any(not 0 < p < 256 for p in pts):
        raise ValueError("Vandermonde points must be non-zero")
    rows = []
    for p in pts:
        row = [1]
        for _ in range(1, width):
            row.append(mul(row[-1], p))
        rows.append(row)
    return rows


def mat_inv(matrix: Sequence[Sequence[int]]) -> list[list[int]]:
    """Invert a square matrix by Gauss--Jordan elimination.

    Raises ValueError("singular matrix over GF(2^8)") when no inverse
    exists (callers treat this the same as numpy's LinAlgError).
    """
    k = len(matrix)
    if any(len(row) != k for row in matrix):
        raise ValueError("matrix must be square")
    aug = [list(row) + [1 if r == c else 0 for c in range(k)]
           for r, row in enumerate(matrix)]
    for col in range(k):
        pivot = next((r for r in range(col, k) if aug[r][col]), None)
        if pivot is None:
            raise ValueError("singular matrix over GF(2^8)")
        if pivot != col:
            aug[col], aug[pivot] = aug[pivot], aug[col]
        inv_p = inv(aug[col][col])
        aug[col] = [mul(v, inv_p) for v in aug[col]]
        for r in range(k):
            if r == col or aug[r][col] == 0:
                continue
            factor = aug[r][col]
            row = aug[col]
            aug[r] = [v ^ mul(factor, w) for v, w in zip(aug[r], row)]
    return [row[k:] for row in aug]
