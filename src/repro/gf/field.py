"""Scalar GF(2^8) operations.

These are the readable reference implementations; the erasure codec uses
the vectorised kernels in :mod:`repro.gf.matrix` for bulk data.  All
functions operate on Python ints in ``[0, 255]`` and raise
:class:`ValueError` on out-of-range inputs so that coding bugs surface at
the field boundary rather than as silent wraparound.
"""

from __future__ import annotations

from repro.gf.tables import EXP_TABLE, GF_ORDER, GF_POLY, LOG_TABLE

__all__ = [
    "GF_ORDER",
    "GF_POLY",
    "gf_add",
    "gf_mul",
    "gf_div",
    "gf_inv",
    "gf_pow",
]


def _check(a: int) -> int:
    if not 0 <= a < GF_ORDER:
        raise ValueError(f"value {a!r} outside GF(2^8)")
    return a


def gf_add(a: int, b: int) -> int:
    """Field addition (== subtraction): bitwise XOR."""
    return _check(a) ^ _check(b)


def gf_mul(a: int, b: int) -> int:
    """Field multiplication via log/exp tables."""
    _check(a)
    _check(b)
    if a == 0 or b == 0:
        return 0
    return int(EXP_TABLE[LOG_TABLE[a] + LOG_TABLE[b]])


def gf_div(a: int, b: int) -> int:
    """Field division ``a / b``; raises ZeroDivisionError when b == 0."""
    _check(a)
    _check(b)
    if b == 0:
        raise ZeroDivisionError("division by zero in GF(2^8)")
    if a == 0:
        return 0
    return int(EXP_TABLE[LOG_TABLE[a] - LOG_TABLE[b] + 255])


def gf_inv(a: int) -> int:
    """Multiplicative inverse; raises ZeroDivisionError for zero."""
    _check(a)
    if a == 0:
        raise ZeroDivisionError("zero has no inverse in GF(2^8)")
    return int(EXP_TABLE[255 - LOG_TABLE[a]])


def gf_pow(a: int, k: int) -> int:
    """Field exponentiation ``a ** k`` for integer k >= 0 (and k < 0 via inverse)."""
    _check(a)
    if a == 0:
        if k == 0:
            return 1
        if k < 0:
            raise ZeroDivisionError("zero has no inverse in GF(2^8)")
        return 0
    log_a = int(LOG_TABLE[a])
    return int(EXP_TABLE[(log_a * k) % 255 + (255 if (log_a * k) % 255 < 0 else 0)])
