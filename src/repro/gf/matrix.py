"""Matrix algebra over GF(2^8).

Matrices are numpy ``uint8`` arrays.  Bulk multiplication is expressed
through the log/exp tables with numpy gather operations so that encoding
a chunk touches no Python-level per-byte loop.  Gaussian elimination is
used for inversion; ranks are computed the same way, which the keyed
codec uses to verify that every t-subset of its dispersal matrix is
invertible.
"""

from __future__ import annotations

import numpy as np

from repro.gf.tables import EXP_TABLE, LOG_TABLE

__all__ = [
    "gf_mat_mul",
    "gf_mat_vec",
    "gf_mat_inv",
    "gf_mat_rank",
    "vandermonde",
]


def _as_gf(m: np.ndarray) -> np.ndarray:
    arr = np.asarray(m, dtype=np.uint8)
    if arr.ndim != 2:
        raise ValueError("expected a 2-D matrix")
    return arr


def gf_mat_mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product ``a @ b`` over GF(2^8).

    Uses the identity a*b = exp(log a + log b) per element, with zero rows
    and columns masked out, then XOR-reduces partial products.  Shapes
    follow numpy matmul rules for 2-D inputs.
    """
    a = _as_gf(a)
    b = _as_gf(b)
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"shape mismatch: {a.shape} @ {b.shape}")
    # partial[i, k, j] = a[i, k] * b[k, j]
    log_a = LOG_TABLE[a]  # int32
    log_b = LOG_TABLE[b]
    partial = EXP_TABLE[log_a[:, :, None] + log_b[None, :, :]].astype(np.uint8)
    mask = (a[:, :, None] != 0) & (b[None, :, :] != 0)
    partial = np.where(mask, partial, 0)
    return np.bitwise_xor.reduce(partial, axis=1)


def gf_mat_vec(a: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Matrix--vector product over GF(2^8)."""
    x = np.asarray(x, dtype=np.uint8)
    if x.ndim != 1:
        raise ValueError("expected a 1-D vector")
    return gf_mat_mul(a, x[:, None])[:, 0]


def gf_mat_inv(m: np.ndarray) -> np.ndarray:
    """Invert a square matrix via Gauss--Jordan elimination.

    Raises ``np.linalg.LinAlgError`` when the matrix is singular, matching
    the numpy convention so callers can reuse their error handling.
    """
    m = _as_gf(m)
    k = m.shape[0]
    if m.shape != (k, k):
        raise ValueError("matrix must be square")
    # augmented [m | I] in int32 workspace for index math
    aug = np.concatenate([m, np.eye(k, dtype=np.uint8)], axis=1).astype(np.int32)
    for col in range(k):
        pivot_rows = np.nonzero(aug[col:, col])[0]
        if pivot_rows.size == 0:
            raise np.linalg.LinAlgError("singular matrix over GF(2^8)")
        pivot = col + int(pivot_rows[0])
        if pivot != col:
            aug[[col, pivot]] = aug[[pivot, col]]
        # normalise pivot row to leading 1
        inv_p = EXP_TABLE[255 - LOG_TABLE[aug[col, col]]]
        row = aug[col]
        nz = row != 0
        row[nz] = EXP_TABLE[LOG_TABLE[row[nz]] + LOG_TABLE[inv_p]]
        # eliminate the column from every other row
        for r in range(k):
            if r == col or aug[r, col] == 0:
                continue
            factor = aug[r, col]
            scaled = np.zeros_like(row)
            nz = row != 0
            scaled[nz] = EXP_TABLE[LOG_TABLE[row[nz]] + LOG_TABLE[factor]]
            aug[r] ^= scaled
    return aug[:, k:].astype(np.uint8)


def gf_mat_rank(m: np.ndarray) -> int:
    """Rank of a matrix over GF(2^8) by forward elimination."""
    work = _as_gf(m).astype(np.int32).copy()
    rows, cols = work.shape
    rank = 0
    for col in range(cols):
        if rank == rows:
            break
        pivot_rows = np.nonzero(work[rank:, col])[0]
        if pivot_rows.size == 0:
            continue
        pivot = rank + int(pivot_rows[0])
        if pivot != rank:
            work[[rank, pivot]] = work[[pivot, rank]]
        inv_p = EXP_TABLE[255 - LOG_TABLE[work[rank, col]]]
        row = work[rank]
        nz = row != 0
        row[nz] = EXP_TABLE[LOG_TABLE[row[nz]] + LOG_TABLE[inv_p]]
        for r in range(rank + 1, rows):
            if work[r, col] == 0:
                continue
            factor = work[r, col]
            scaled = np.zeros_like(row)
            nz = row != 0
            scaled[nz] = EXP_TABLE[LOG_TABLE[row[nz]] + LOG_TABLE[factor]]
            work[r] ^= scaled
        rank += 1
    return rank


def vandermonde(points: np.ndarray, width: int) -> np.ndarray:
    """Vandermonde matrix V[i, j] = points[i] ** j over GF(2^8).

    ``points`` must be distinct non-zero field elements — distinctness
    guarantees every ``width``-subset of rows is invertible, which is what
    makes the matrix usable as an MDS erasure-code dispersal matrix.
    """
    pts = np.asarray(points, dtype=np.uint8)
    if pts.ndim != 1:
        raise ValueError("points must be a 1-D vector")
    if len(set(pts.tolist())) != pts.size:
        raise ValueError("Vandermonde points must be distinct")
    if np.any(pts == 0):
        raise ValueError("Vandermonde points must be non-zero")
    n = pts.size
    out = np.ones((n, width), dtype=np.uint8)
    logs = LOG_TABLE[pts]  # int32
    for j in range(1, width):
        out[:, j] = EXP_TABLE[(logs * j) % 255]
    return out
