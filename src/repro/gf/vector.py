"""Batched GF(2^8) kernels over whole 2-D share matrices.

The scalar reference multiplies one coefficient into one stripe at a
time (``n * t`` Python-level passes per chunk).  These kernels encode a
chunk in a single table-lookup gather: the full ``(rows, t)`` dispersal
matrix is broadcast against the ``(t, L)`` stripe matrix through the
precomputed 256x256 multiplication table, and the ``t`` partial
products are XOR-reduced in one numpy reduction —

    out[i, k] = XOR_j MUL_TABLE[matrix[i, j], stripes[j, k]]

The gather materialises a ``(rows, t, block)`` intermediate, so long
stripes are processed in fixed-size column blocks to bound peak memory
at roughly ``2 * _BLOCK_BYTES`` regardless of chunk size.

Outputs are C-contiguous ``uint8`` matrices whose rows the codec hands
out as zero-copy ``memoryview`` share payloads.
"""

from __future__ import annotations

import numpy as np

from repro.gf.tables import MUL_TABLE

__all__ = ["stripe", "matmul", "encode_blocks"]

#: Upper bound on the (rows * t * block) gather intermediate, in bytes.
_BLOCK_BYTES = 4 * 1024 * 1024


def stripe(data, t: int) -> np.ndarray:
    """Reshape chunk bytes into a zero-padded ``(t, L)`` stripe matrix.

    ``data`` may be any bytes-like object (bytes, memoryview, ndarray).
    When the length is already a multiple of ``t`` the result is a
    zero-copy reshaped view of the input buffer; otherwise one padded
    copy is made (the pad bytes must exist somewhere).
    """
    buf = np.frombuffer(data, dtype=np.uint8)
    stripe_len = max(1, -(-buf.size // t))
    if buf.size == t * stripe_len:
        return buf.reshape(t, stripe_len)
    padded = np.zeros(t * stripe_len, dtype=np.uint8)
    padded[: buf.size] = buf
    return padded.reshape(t, stripe_len)


def matmul(matrix: np.ndarray, stripes: np.ndarray) -> np.ndarray:
    """``matrix @ stripes`` over GF(2^8) via table-lookup xor-accumulate.

    Args:
        matrix: ``(rows, t)`` uint8 coefficient matrix.
        stripes: ``(t, L)`` uint8 data matrix.

    Returns:
        ``(rows, L)`` C-contiguous uint8 product.
    """
    m = np.ascontiguousarray(matrix, dtype=np.uint8)
    s = np.asarray(stripes, dtype=np.uint8)
    rows, t = m.shape
    if s.shape[0] != t:
        raise ValueError(f"shape mismatch: {m.shape} @ {s.shape}")
    length = s.shape[1]
    out = np.empty((rows, length), dtype=np.uint8)
    step = max(1, _BLOCK_BYTES // max(1, rows * t))
    row_idx = m[:, :, None]  # (rows, t, 1)
    for lo in range(0, length, step):
        hi = min(length, lo + step)
        partial = MUL_TABLE[row_idx, s[None, :, lo:hi]]  # (rows, t, hi-lo)
        np.bitwise_xor.reduce(partial, axis=1, out=out[:, lo:hi])
    return out


def encode_blocks(matrix: np.ndarray, data, t: int) -> np.ndarray:
    """Encode chunk bytes against ``matrix``: all output rows in one call."""
    return matmul(matrix, stripe(data, t))
