"""Log/exp lookup tables for GF(2^8).

The tables are built once at import time by repeated multiplication by the
generator 0x03 (a primitive element of GF(2^8) under the AES reduction
polynomial x^8 + x^4 + x^3 + x + 1, i.e. 0x11B).  ``EXP_TABLE`` is doubled
in length so that ``EXP_TABLE[log_a + log_b]`` never needs an explicit
modulo 255 reduction.
"""

from __future__ import annotations

import numpy as np

#: Reduction polynomial x^8 + x^4 + x^3 + x + 1.
GF_POLY = 0x11B

#: Field order (number of elements).
GF_ORDER = 256

#: Multiplicative generator used to build the tables.
GF_GENERATOR = 0x03


def _build_tables() -> tuple[np.ndarray, np.ndarray]:
    exp = np.zeros(510, dtype=np.int32)
    log = np.zeros(256, dtype=np.int32)
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        # multiply x by the generator 0x03 = x * 2 + x in GF(2^8)
        x2 = x << 1
        if x2 & 0x100:
            x2 ^= GF_POLY
        x = x2 ^ x
    # duplicate so exp[i + 255] == exp[i]; avoids % 255 in hot loops
    exp[255:510] = exp[0:255]
    log[0] = 0  # log(0) is undefined; callers must special-case zero
    return exp, log


EXP_TABLE, LOG_TABLE = _build_tables()

#: Full 256x256 multiplication table, used by the vectorised codec kernels.
MUL_TABLE = np.zeros((256, 256), dtype=np.uint8)
_nz = np.arange(1, 256)
_log_a = LOG_TABLE[_nz][:, None]
_log_b = LOG_TABLE[_nz][None, :]
MUL_TABLE[1:, 1:] = EXP_TABLE[_log_a + _log_b].astype(np.uint8)
del _nz, _log_a, _log_b
