"""Synthetic traceroute generation.

A route is the hop sequence from the client to one CSP's storage
endpoint.  Real routes to CSPs on a shared platform converge on that
platform's backbone routers before fanning out to per-service endpoints;
we synthesise exactly that structure: common client-ISP hops, then
platform backbone hops (shared by all CSPs of one platform), then a
per-CSP endpoint hop.

The paper notes (footnote 5) that some CSPs front their storage with
separate API endpoints; reading the internal connection reveals the true
storage IP.  ``synthesize_routes`` models this with an optional
``api_indirection`` set: those CSPs get a decoy API hop which is
replaced by the resolved storage path, as the paper's probe does.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence


@dataclass(frozen=True)
class Route:
    """A hop path from the client to one CSP."""

    csp: str
    hops: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.hops:
            raise ValueError("route must have at least one hop")


def synthesize_routes(
    csps: Sequence[str],
    platforms: Mapping[str, str],
    isp_hops: int = 2,
    backbone_hops: int = 2,
    seed: int = 0,
    api_indirection: Iterable[str] = (),
) -> list[Route]:
    """Generate one route per CSP.

    Args:
        csps: CSP names.
        platforms: CSP name -> platform label; CSPs mapping to the same
            label share backbone hops.  CSPs absent from the mapping get
            a private platform (their own infrastructure).
        isp_hops: Client-side hops shared by every route.
        backbone_hops: Hops inside each platform's network.
        seed: Deterministic hop-name generation.
        api_indirection: CSPs whose public endpoint is an API proxy; the
            generator emits the *resolved* storage route for them (the
            paper reads the internal connection to find the true IP).
    """
    rng = random.Random(seed)
    indirect = set(api_indirection)

    def hop_name(scope: str, i: int) -> str:
        return f"{scope}-r{i}-{rng.randrange(16**4):04x}"

    client_path = [hop_name("isp", i) for i in range(isp_hops)]
    platform_paths: dict[str, list[str]] = {}
    routes: list[Route] = []
    for csp in csps:
        platform = platforms.get(csp, f"self-{csp}")
        if platform not in platform_paths:
            platform_paths[platform] = [
                hop_name(f"net-{platform}", i) for i in range(backbone_hops)
            ]
        endpoint = f"storage-{csp}"
        # API-fronted CSPs still end at their resolved storage endpoint;
        # the decoy api hop is what a naive geolocation would see instead
        hops = tuple(client_path + platform_paths[platform] + [endpoint])
        routes.append(Route(csp=csp, hops=hops))
    return routes
