"""Spanning tree of the client->CSP route graph.

The union of all routes forms a graph rooted at the client; the paper
takes its minimal spanning tree ("we use traceroute to find the path
between a given user and each CSP and construct the minimal spanning
tree of the resulting graph", Section 4.1).  Routes are unweighted hop
lists here, so the BFS tree from the client is a minimal spanning tree.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx

from repro.topology.routes import Route

#: Name of the root (client) node in the route tree.
CLIENT_NODE = "client"


def route_graph(routes: Sequence[Route]) -> nx.Graph:
    """Union of all routes as an undirected graph rooted at the client."""
    g = nx.Graph()
    g.add_node(CLIENT_NODE)
    for route in routes:
        prev = CLIENT_NODE
        for hop in route.hops:
            g.add_edge(prev, hop)
            prev = hop
        g.nodes[prev]["csp"] = route.csp
    return g


def route_tree(routes: Sequence[Route]) -> nx.DiGraph:
    """Spanning tree of the route graph, directed away from the client.

    Each node carries a ``depth`` attribute; CSP endpoint nodes carry a
    ``csp`` attribute naming the provider (Figure 3's leaves).
    """
    if not routes:
        raise ValueError("need at least one route")
    g = route_graph(routes)
    tree = nx.bfs_tree(g, CLIENT_NODE)
    for node, data in g.nodes(data=True):
        if "csp" in data:
            tree.nodes[node]["csp"] = data["csp"]
    for node, depth in nx.shortest_path_length(tree, CLIENT_NODE).items():
        tree.nodes[node]["depth"] = depth
    return tree
