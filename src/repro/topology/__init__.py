"""CSP platform-independence inference (paper Section 4.1).

CYRUS avoids storing two shares of one chunk at CSPs that share physical
infrastructure (e.g. Dropbox on Amazon servers).  It infers sharing by
tracerouting to every CSP, building the spanning tree of the union of
routes, and hierarchically clustering CSPs by cutting the tree at a
level (Figure 3).  Real traceroutes are unavailable here, so
:mod:`repro.topology.routes` synthesises hop paths from a declared
platform map — the clustering algorithm itself consumes only hop lists,
exactly as in the paper.
"""

from repro.topology.cluster import cluster_at_level, cluster_csps, render_tree
from repro.topology.routes import Route, synthesize_routes
from repro.topology.tree import CLIENT_NODE, route_tree

__all__ = [
    "Route",
    "synthesize_routes",
    "route_tree",
    "CLIENT_NODE",
    "cluster_at_level",
    "cluster_csps",
    "render_tree",
]
