"""Hierarchical clustering by tree cut (paper Section 4.1, Figure 3).

"We hierarchically cluster the CSPs by horizontally cutting the tree at
a given level."  CSPs whose routes still share an ancestor at the cut
depth land in one cluster — they share infrastructure at least that deep
and should hold at most one share of any chunk between them.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx

from repro.topology.routes import Route
from repro.topology.tree import CLIENT_NODE, route_tree


def _csp_leaves(tree: nx.DiGraph) -> dict[str, str]:
    """CSP name -> endpoint node."""
    return {
        data["csp"]: node
        for node, data in tree.nodes(data=True)
        if "csp" in data
    }


def cluster_at_level(tree: nx.DiGraph, level: int) -> list[set[str]]:
    """Cut the tree at ``level`` and group CSPs by ancestor.

    ``level`` is a depth from the client root (depth 0).  CSPs whose
    path to the root passes through the same node at that depth form one
    cluster.  CSPs whose endpoint is shallower than the cut form
    singleton clusters.
    """
    if level < 1:
        raise ValueError(f"level must be >= 1, got {level}")
    leaves = _csp_leaves(tree)
    groups: dict[str, set[str]] = {}
    for csp, leaf in leaves.items():
        path = nx.shortest_path(tree, CLIENT_NODE, leaf)
        anchor = path[level] if level < len(path) else leaf
        groups.setdefault(anchor, set()).add(csp)
    return sorted(groups.values(), key=lambda s: (-len(s), sorted(s)))


def cluster_csps(
    routes: Sequence[Route], level: int | None = None
) -> list[set[str]]:
    """End-to-end clustering: routes -> tree -> cut.

    When ``level`` is None, picks the deepest cut that still merges some
    CSPs (the informative level: any deeper and everything is a
    singleton), falling back to the first level past the shared
    client-ISP hops.
    """
    tree = route_tree(routes)
    if level is not None:
        return cluster_at_level(tree, level)
    max_depth = max(
        data["depth"] for _, data in tree.nodes(data=True) if "csp" in data
    )
    best = None
    for lvl in range(max_depth, 0, -1):
        clusters = cluster_at_level(tree, lvl)
        if any(len(c) > 1 for c in clusters):
            return clusters
        best = clusters
    return best if best is not None else []


def render_tree(tree: nx.DiGraph) -> str:
    """ASCII rendering of the route tree (for the Figure 3 benchmark)."""
    lines: list[str] = []

    def walk(node: str, prefix: str, is_last: bool) -> None:
        label = node
        csp = tree.nodes[node].get("csp")
        if csp:
            label = f"{node} [{csp}]"
        connector = "`-- " if is_last else "|-- "
        if node == CLIENT_NODE:
            lines.append(label)
        else:
            lines.append(prefix + connector + label)
        children = sorted(tree.successors(node))
        child_prefix = prefix + ("    " if is_last else "|   ")
        if node == CLIENT_NODE:
            child_prefix = ""
        for i, child in enumerate(children):
            walk(child, child_prefix, i == len(children) - 1)

    walk(CLIENT_NODE, "", True)
    return "\n".join(lines)
