"""Byte and rate units with human-readable formatting."""

from __future__ import annotations

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


def format_bytes(size: float) -> str:
    """Render a byte count like ``'3.71 MB'``."""
    value = float(size)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1024 or unit == "TB":
            if unit == "B":
                return f"{int(value)} B"
            return f"{value:.2f} {unit}"
        value /= 1024
    raise AssertionError("unreachable")


def format_rate(bytes_per_second: float) -> str:
    """Render a transfer rate like ``'2.31 MB/s'``."""
    return format_bytes(bytes_per_second) + "/s"
