"""Hashing helpers.

Share names follow the paper's scheme H'(index, H(chunk.content)) from
Section 5.1: the inner SHA-1 identifies the chunk, the outer hash mixes
in the share index so no CSP can learn which index it holds, yet any
client can recompute the name.
"""

from __future__ import annotations

import hashlib


def sha1_hex(data: bytes) -> str:
    """Hex SHA-1 digest — the paper's H, used for chunk and file IDs."""
    return hashlib.sha1(data).hexdigest()


def share_name(index: int, chunk_id: str) -> str:
    """Share object name H'(index, H(chunk.content)).

    ``chunk_id`` is the hex SHA-1 of the chunk content.  H' is SHA-1 over
    the index and the chunk id; the paper allows any hash here.
    """
    if index < 0:
        raise ValueError("share index must be non-negative")
    payload = index.to_bytes(4, "big") + bytes.fromhex(chunk_id)
    return hashlib.sha1(payload).hexdigest()


def stable_hash64(text: str) -> int:
    """A stable 64-bit hash of a string (SHA-1 prefix).

    Used wherever we need deterministic pseudo-randomness that must not
    vary across Python processes (``hash()`` is salted per process).
    """
    return int.from_bytes(hashlib.sha1(text.encode("utf-8")).digest()[:8], "big")
