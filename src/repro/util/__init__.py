"""Shared utilities: hashing, canonical serialization, simulated clocks."""

from repro.util.clock import Clock, SimClock, WallClock
from repro.util.hashing import sha1_hex, share_name, stable_hash64
from repro.util.units import GB, KB, MB, format_bytes, format_rate

__all__ = [
    "Clock",
    "SimClock",
    "WallClock",
    "sha1_hex",
    "share_name",
    "stable_hash64",
    "KB",
    "MB",
    "GB",
    "format_bytes",
    "format_rate",
]
