"""Clock abstraction.

All time-dependent code takes a :class:`Clock` so that experiments run on
a deterministic :class:`SimClock` (advanced by the network simulator)
while the library still works against real providers with a
:class:`WallClock`.

Backoff sleeps go through :func:`sleep_on`, which honours whatever the
injected clock provides: a ``sleep`` method first (fake/test clocks), an
``advance`` method next (:class:`SimClock`), and only falls back to a
real :func:`time.sleep` for plain wall clocks — so a test that installs
a fake clock never costs real seconds on retry backoff.
"""

from __future__ import annotations

import threading
import time
from typing import Protocol, runtime_checkable


@runtime_checkable
class Clock(Protocol):
    """Anything with a ``now() -> float`` in seconds."""

    def now(self) -> float:  # pragma: no cover - protocol signature
        ...


class WallClock:
    """Real time (``time.monotonic``)."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        """Really sleep (the only clock for which sleeping costs time)."""
        if seconds > 0:
            time.sleep(seconds)


class SimClock:
    """A manually advanced simulation clock.

    Time never goes backwards; ``advance`` rejects negative deltas and
    ``advance_to`` rejects targets in the past, so an out-of-order event
    schedule fails loudly instead of silently corrupting timings.
    Advancing is guarded by a lock so concurrent workers sharing one
    simulated timeline cannot interleave a read-modify-write.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._lock = threading.Lock()

    def now(self) -> float:
        return self._now

    def advance(self, delta: float) -> float:
        if delta < 0:
            raise ValueError(f"cannot advance clock by negative delta {delta}")
        with self._lock:
            self._now += delta
            return self._now

    def advance_to(self, target: float) -> float:
        with self._lock:
            if target < self._now - 1e-9:
                raise ValueError(
                    f"cannot move clock backwards: now={self._now}, "
                    f"target={target}"
                )
            self._now = max(self._now, target)
            return self._now

    def sleep(self, seconds: float) -> None:
        """A sleep on simulated time is an exact advance."""
        if seconds > 0:
            self.advance(seconds)


def sleep_on(clock: Clock, seconds: float) -> None:
    """Sleep ``seconds`` on whatever notion of time ``clock`` has.

    Preference order: the clock's own ``sleep`` (fake clocks record or
    swallow it), then ``advance`` (SimClock semantics for clocks that
    predate ``sleep``), then a real :func:`time.sleep`.
    """
    if seconds <= 0:
        return
    sleeper = getattr(clock, "sleep", None)
    if callable(sleeper):
        sleeper(seconds)
        return
    advance = getattr(clock, "advance", None)
    if callable(advance):
        advance(seconds)
        return
    time.sleep(seconds)
