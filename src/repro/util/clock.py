"""Clock abstraction.

All time-dependent code takes a :class:`Clock` so that experiments run on
a deterministic :class:`SimClock` (advanced by the network simulator)
while the library still works against real providers with a
:class:`WallClock`.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable


@runtime_checkable
class Clock(Protocol):
    """Anything with a ``now() -> float`` in seconds."""

    def now(self) -> float:  # pragma: no cover - protocol signature
        ...


class WallClock:
    """Real time (``time.monotonic``)."""

    def now(self) -> float:
        return time.monotonic()


class SimClock:
    """A manually advanced simulation clock.

    Time never goes backwards; ``advance`` rejects negative deltas and
    ``advance_to`` rejects targets in the past, so an out-of-order event
    schedule fails loudly instead of silently corrupting timings.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, delta: float) -> float:
        if delta < 0:
            raise ValueError(f"cannot advance clock by negative delta {delta}")
        self._now += delta
        return self._now

    def advance_to(self, target: float) -> float:
        if target < self._now - 1e-9:
            raise ValueError(
                f"cannot move clock backwards: now={self._now}, target={target}"
            )
        self._now = max(self._now, target)
        return self._now
