"""Canonical JSON serialization.

Metadata nodes are content-addressed (their name includes a hash of
their bytes), so the byte encoding must be canonical: sorted keys, no
insignificant whitespace, UTF-8.  Two clients serialising the same
logical node must produce identical bytes.
"""

from __future__ import annotations

import json
from typing import Any


def canonical_dumps(obj: Any) -> bytes:
    """Serialize to canonical JSON bytes (sorted keys, compact separators)."""
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), ensure_ascii=False
    ).encode("utf-8")


def canonical_loads(data: bytes) -> Any:
    """Inverse of :func:`canonical_dumps`."""
    return json.loads(data.decode("utf-8"))
