"""Client<->CSP link model.

A link carries per-direction capacities (possibly time-varying) and a
request round-trip time.  Capacity here is the *per-connection
achievable* rate to that CSP — the paper's beta-bar upper bound in
Section 4.3 — while the client-wide uplink/downlink cap lives in the
simulator, since it is shared across links.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.netsim.tcp import mathis_throughput
from repro.netsim.trace import RateTrace


@dataclass
class Link:
    """A simulated network path between the client and one CSP.

    Attributes:
        link_id: Identifier (normally the CSP id).
        rtt_s: Request round-trip time in seconds, charged once per
            transfer before data flows.
        up: Upload capacity trace (bytes/s).
        down: Download capacity trace (bytes/s).
    """

    link_id: str
    rtt_s: float
    up: RateTrace
    down: RateTrace = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.rtt_s < 0:
            raise ValueError(f"RTT must be non-negative, got {self.rtt_s}")
        if self.down is None:
            self.down = self.up

    @classmethod
    def symmetric(cls, link_id: str, rate: float, rtt_s: float = 0.0) -> "Link":
        """A constant-rate link with equal up and down capacity."""
        return cls(link_id, rtt_s, RateTrace.constant(rate))

    @classmethod
    def from_rtt(
        cls,
        link_id: str,
        rtt_ms: float,
        loss: float = 0.001,
        window: int = 65535,
    ) -> "Link":
        """Derive both capacities from RTT via the Table 2 TCP model."""
        rate = mathis_throughput(rtt_ms / 1000.0, loss=loss, window=window)
        return cls(link_id, rtt_ms / 1000.0, RateTrace.constant(rate))

    def capacity_at(self, t: float, direction: str) -> float:
        """Capacity (bytes/s) in the given direction at time ``t``."""
        return self._trace(direction).rate_at(t)

    def next_change_after(self, t: float, direction: str) -> float:
        """Next capacity breakpoint strictly after ``t`` (inf if none)."""
        return self._trace(direction).next_change_after(t)

    def _trace(self, direction: str) -> RateTrace:
        if direction == "up":
            return self.up
        if direction == "down":
            return self.down
        raise ValueError(f"direction must be 'up' or 'down', got {direction!r}")

    def mean_capacity(self, direction: str, horizon_s: float = 48 * 3600) -> float:
        """Time-average capacity over [0, horizon] (for planning)."""
        trace = self._trace(direction)
        total = 0.0
        t = 0.0
        while t < horizon_s:
            nxt = min(trace.next_change_after(t), horizon_s)
            total += trace.rate_at(t) * (nxt - t)
            if math.isinf(nxt):
                break
            t = nxt
        return total / horizon_s
