"""Time-varying rate traces.

Figure 17 of the paper samples upload/download completion times every
hour for two days, capturing diurnal variation in CSP throughput.  A
:class:`RateTrace` is a piecewise-constant capacity schedule; links can
be given one per direction, and the flow simulator re-solves its
bandwidth allocation at every breakpoint.
"""

from __future__ import annotations

import bisect
import math
from typing import Sequence


class RateTrace:
    """Piecewise-constant capacity over time.

    Args:
        breakpoints: Ascending times (seconds) at which capacity changes.
        rates: ``len(breakpoints) + 1`` capacities in bytes/second;
            ``rates[0]`` applies before the first breakpoint.
    """

    def __init__(self, breakpoints: Sequence[float], rates: Sequence[float]):
        if len(rates) != len(breakpoints) + 1:
            raise ValueError(
                f"need len(rates) == len(breakpoints) + 1, got "
                f"{len(rates)} rates for {len(breakpoints)} breakpoints"
            )
        if any(r < 0 for r in rates):
            raise ValueError("rates must be non-negative")
        if list(breakpoints) != sorted(breakpoints):
            raise ValueError("breakpoints must be ascending")
        self._breaks = list(breakpoints)
        self._rates = list(rates)

    @classmethod
    def constant(cls, rate: float) -> "RateTrace":
        """A trace that never changes."""
        return cls([], [rate])

    @classmethod
    def diurnal(
        cls,
        base_rate: float,
        amplitude: float,
        period_s: float = 24 * 3600.0,
        steps_per_period: int = 24,
        periods: int = 2,
        phase: float = 0.0,
    ) -> "RateTrace":
        """A sampled sinusoid: rate = base * (1 + amplitude * sin(...)).

        Used by the Figure 17 benchmark to emulate the diurnal load swing
        observed on commercial CSPs over the two-day measurement.
        """
        if not 0 <= amplitude < 1:
            raise ValueError(f"amplitude must be in [0, 1), got {amplitude}")
        step = period_s / steps_per_period
        count = steps_per_period * periods
        breaks = [step * (i + 1) for i in range(count - 1)]
        rates = [
            base_rate
            * (1 + amplitude * math.sin(2 * math.pi * (i * step) / period_s + phase))
            for i in range(count)
        ]
        return cls(breaks, rates)

    def rate_at(self, t: float) -> float:
        """Capacity in effect at time ``t``."""
        return self._rates[bisect.bisect_right(self._breaks, t)]

    def next_change_after(self, t: float) -> float:
        """Next breakpoint strictly after ``t``, or ``inf`` if none."""
        i = bisect.bisect_right(self._breaks, t)
        return self._breaks[i] if i < len(self._breaks) else math.inf
