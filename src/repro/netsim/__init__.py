"""Flow-level network simulation.

The paper's completion-time results (Figures 14--19) are driven by how
parallel share transfers contend for bandwidth: each CSP connection has
its own achievable rate, and all connections share the client's uplink
or downlink (paper Section 4.3).  This package reproduces exactly that
contention structure:

* :mod:`repro.netsim.tcp` — the RTT -> throughput model used to derive
  Table 2's throughput column (Mathis formula, 0.1 % loss, 64 KiB
  window cap);
* :mod:`repro.netsim.link` — a client<->CSP link with per-direction
  capacities and optional time-varying rate traces;
* :mod:`repro.netsim.simulator` — an event-driven, max--min-fair
  bandwidth-sharing simulator that computes per-transfer completion
  times for arbitrary sets of overlapping transfers.
"""

from repro.netsim.link import Link
from repro.netsim.simulator import FlowSimulator, TransferRequest, TransferResult
from repro.netsim.tcp import mathis_throughput
from repro.netsim.trace import RateTrace

__all__ = [
    "Link",
    "FlowSimulator",
    "TransferRequest",
    "TransferResult",
    "mathis_throughput",
    "RateTrace",
]
