"""Event-driven flow-level transfer simulator.

Models a single client exchanging objects with multiple CSPs over
parallel connections.  Bandwidth is shared max--min fairly subject to

* a per-link, per-direction capacity (the paper's beta-bar_c), and
* a client-wide per-direction capacity shared by all links (beta).

This is the contention structure of the paper's Section 4.3 problem; the
simulator is the "testbed" on which all completion-time experiments run.
Each transfer is charged one link RTT before data flows (request
latency), matching how a REST upload/download behaves.

Group quotas implement DepSky-style redundant transfers: requests that
share a ``group`` are all started, and once ``group_quota[group]`` of
them complete the remainder are cancelled (paper Section 7.3: DepSky
"starts uploads to all CSPs and cancels pending requests when n uploads
complete").
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable, Mapping, Sequence

from repro.errors import TransferError
from repro.netsim.link import Link

_EPS = 1e-9


@dataclass(frozen=True)
class TransferRequest:
    """One object transfer to schedule.

    Attributes:
        link_id: Target link (CSP).
        size: Payload size in bytes.
        direction: ``"up"`` or ``"down"``.
        start_at: Absolute simulation time at which the request is issued.
        tag: Opaque caller correlation value (returned on the result).
        group: Optional cancellation-group key (see module docstring).
    """

    link_id: str
    size: int
    direction: str
    start_at: float = 0.0
    tag: Any = None
    group: Hashable | None = None

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"size must be non-negative, got {self.size}")
        if self.direction not in ("up", "down"):
            raise ValueError(f"direction must be 'up'/'down', got {self.direction!r}")
        if self.start_at < 0:
            raise ValueError(f"start_at must be non-negative, got {self.start_at}")


@dataclass
class TransferResult:
    """Outcome of one transfer.

    ``end`` is the completion (or cancellation) time; ``completed`` is
    False only for quota-cancelled transfers.  ``bytes_done`` reports
    partial progress for cancelled flows.
    """

    request: TransferRequest
    start: float
    end: float
    completed: bool
    bytes_done: int

    @property
    def duration(self) -> float:
        """Wall time from request issue to completion/cancellation."""
        return self.end - self.start


@dataclass
class _Flow:
    order: int
    request: TransferRequest
    issue: float  # absolute time the request was issued
    activation: float  # issue + link RTT
    remaining: float
    rate: float = 0.0
    result: TransferResult | None = None
    pool: str = field(init=False)

    def __post_init__(self) -> None:
        self.pool = self.request.direction


class FlowSimulator:
    """Simulate batches of parallel transfers over a set of links.

    Args:
        links: Links indexed by ``link_id``.
        client_up: Client total upload capacity (bytes/s; inf = unbounded).
        client_down: Client total download capacity.
    """

    def __init__(
        self,
        links: Mapping[str, Link],
        client_up: float = math.inf,
        client_down: float = math.inf,
        metrics=None,
    ):
        if client_up <= 0 or client_down <= 0:
            raise ValueError("client capacities must be positive")
        self.links = dict(links)
        self.client_up = client_up
        self.client_down = client_down
        # optional repro.obs.metrics.MetricsRegistry: per-link flow
        # counts, simulated bytes and flow durations (duck-typed)
        self.metrics = metrics

    def client_capacity(self, direction: str) -> float:
        """The client-wide capacity for one direction."""
        return self.client_up if direction == "up" else self.client_down

    # ------------------------------------------------------------------

    def run(
        self,
        requests: Sequence[TransferRequest],
        group_quota: Mapping[Hashable, int] | None = None,
        start_time: float = 0.0,
    ) -> list[TransferResult]:
        """Simulate all ``requests``; returns results in request order.

        ``start_time`` shifts the whole batch (requests' ``start_at`` are
        relative offsets added to it).  Raises :class:`TransferError` if
        progress stalls forever (zero capacity with no future change).
        """
        group_quota = dict(group_quota or {})
        flows = []
        for order, req in enumerate(requests):
            link = self.links.get(req.link_id)
            if link is None:
                raise TransferError(f"unknown link {req.link_id!r}")
            issue = start_time + req.start_at
            flows.append(
                _Flow(
                    order=order,
                    request=req,
                    issue=issue,
                    activation=issue + link.rtt_s,
                    remaining=float(req.size),
                )
            )
        pending = sorted(flows, key=lambda f: (f.activation, f.order))
        active: list[_Flow] = []
        done_in_group: dict[Hashable, int] = {}
        now = start_time
        pending_iter = iter(pending)
        next_pending = next(pending_iter, None)

        def activate_up_to(t: float) -> None:
            nonlocal next_pending
            while next_pending is not None and next_pending.activation <= t + _EPS:
                flow = next_pending
                next_pending = next(pending_iter, None)
                if flow.remaining <= _EPS:
                    self._finish(flow, max(t, flow.activation), done_in_group)
                else:
                    active.append(flow)

        activate_up_to(now)
        while active or next_pending is not None:
            if not active:
                now = max(now, next_pending.activation)
                activate_up_to(now)
                continue
            self._assign_rates(active, now)
            horizon = math.inf
            if next_pending is not None:
                horizon = next_pending.activation
            for flow in active:
                link = self.links[flow.request.link_id]
                horizon = min(horizon, link.next_change_after(now, flow.pool))
                if math.isinf(flow.rate):
                    horizon = now
                elif flow.rate > _EPS:
                    completion = now + flow.remaining / flow.rate
                    if completion <= now:
                        # residual too small to advance the clock (float
                        # absorption): the flow is effectively done now
                        flow.remaining = 0.0
                        horizon = now
                    else:
                        horizon = min(horizon, completion)
            if math.isinf(horizon):
                stalled = [f.request.link_id for f in active if f.rate <= _EPS]
                raise TransferError(
                    f"transfers stalled with zero capacity forever: {stalled}"
                )
            dt = max(0.0, horizon - now)
            for flow in active:
                if math.isinf(flow.rate):
                    flow.remaining = 0.0
                else:
                    flow.remaining -= flow.rate * dt
            now = horizon
            finished = [f for f in active if f.remaining <= _EPS]
            for flow in finished:
                active.remove(flow)
                self._finish(flow, now, done_in_group)
            # quota cancellation: drop incomplete flows of satisfied groups
            if group_quota and finished:
                satisfied = {
                    g
                    for g, quota in group_quota.items()
                    if done_in_group.get(g, 0) >= quota
                }
                if satisfied:
                    cancelled = [
                        f for f in active if f.request.group in satisfied
                    ]
                    for flow in cancelled:
                        active.remove(flow)
                        self._cancel(flow, now)
                    # cancel not-yet-activated members too
                    if next_pending is not None:
                        requeue = []
                        if next_pending.request.group in satisfied:
                            self._cancel(next_pending, now)
                        else:
                            requeue.append(next_pending)
                        for flow in pending_iter:
                            if flow.request.group in satisfied:
                                self._cancel(flow, now)
                            else:
                                requeue.append(flow)
                        pending_iter = iter(requeue)
                        next_pending = next(pending_iter, None)
            activate_up_to(now)
        return [f.result for f in flows]  # type: ignore[misc]

    # ------------------------------------------------------------------

    def _finish(
        self, flow: _Flow, t: float, done_in_group: dict[Hashable, int]
    ) -> None:
        req = flow.request
        flow.result = TransferResult(
            request=req,
            start=flow.issue,
            end=t,
            completed=True,
            bytes_done=req.size,
        )
        if self.metrics is not None:
            self.metrics.inc("netsim_flows_total", link=req.link_id,
                             direction=req.direction, outcome="completed")
            self.metrics.inc("netsim_bytes_total", req.size,
                             link=req.link_id, direction=req.direction)
            self.metrics.observe("netsim_flow_seconds", t - flow.issue,
                                 direction=req.direction)
        if req.group is not None:
            done_in_group[req.group] = done_in_group.get(req.group, 0) + 1

    def _cancel(self, flow: _Flow, t: float) -> None:
        req = flow.request
        bytes_done = int(req.size - flow.remaining)
        flow.result = TransferResult(
            request=req,
            start=flow.issue,
            end=t,
            completed=False,
            bytes_done=bytes_done,
        )
        if self.metrics is not None:
            self.metrics.inc("netsim_flows_total", link=req.link_id,
                             direction=req.direction, outcome="cancelled")
            self.metrics.inc("netsim_bytes_total", bytes_done,
                             link=req.link_id, direction=req.direction)

    def _assign_rates(self, active: list[_Flow], now: float) -> None:
        """Max--min fair allocation via progressive filling.

        Constraints: one per (link, direction) with that link's current
        capacity, plus one per direction with the client-wide capacity.
        All unfrozen flows grow at the same rate; when a constraint
        saturates, its flows freeze at their current allocation.
        """
        constraints: list[tuple[float, list[_Flow]]] = []
        by_link: dict[tuple[str, str], list[_Flow]] = {}
        by_pool: dict[str, list[_Flow]] = {"up": [], "down": []}
        for flow in active:
            flow.rate = 0.0
            key = (flow.request.link_id, flow.pool)
            by_link.setdefault(key, []).append(flow)
            by_pool[flow.pool].append(flow)
        for (link_id, direction), members in by_link.items():
            cap = self.links[link_id].capacity_at(now, direction)
            constraints.append((cap, members))
        for direction, members in by_pool.items():
            if members:
                constraints.append((self.client_capacity(direction), members))
        unfrozen = set(id(f) for f in active)
        flows_by_id = {id(f): f for f in active}
        while unfrozen:
            best_inc = math.inf
            for cap, members in constraints:
                live = [f for f in members if id(f) in unfrozen]
                if not live or math.isinf(cap):
                    continue
                used = sum(f.rate for f in members)
                best_inc = min(best_inc, (cap - used) / len(live))
            if math.isinf(best_inc):
                # every remaining constraint is infinite: unbounded rate
                for fid in unfrozen:
                    flows_by_id[fid].rate = math.inf
                return
            best_inc = max(0.0, best_inc)
            for fid in unfrozen:
                flows_by_id[fid].rate += best_inc
            newly_frozen: set[int] = set()
            for cap, members in constraints:
                if math.isinf(cap):
                    continue
                used = sum(f.rate for f in members)
                if used >= cap - _EPS * max(1.0, cap):
                    for f in members:
                        if id(f) in unfrozen:
                            newly_frozen.add(id(f))
            if not newly_frozen:
                # numerical safety: freeze everything rather than loop
                break
            unfrozen -= newly_frozen
