"""TCP throughput model.

Table 2 of the paper derives each CSP's throughput from its measured RTT
"assuming a 0.1% packet loss rate and 65,535 byte TCP window size".
Fitting the published (RTT, throughput) pairs shows the authors used the
Mathis et al. loss-based model with a 1024-byte segment, capped by the
window: e.g. 71 ms -> 4.465 Mbps and 235 ms -> 1.349 Mbps both satisfy
``throughput = MSS * sqrt(3/2) / (RTT * sqrt(p))``.  We reproduce that
model exactly so the benchmark regenerating Table 2 matches the paper's
numbers.
"""

from __future__ import annotations

import math

#: Default segment size (bytes) inferred from the paper's Table 2 numbers.
DEFAULT_MSS = 1024

#: Default packet loss probability (paper: 0.1%).
DEFAULT_LOSS = 0.001

#: Default maximum TCP window in bytes (paper: 65,535).
DEFAULT_WINDOW = 65535

#: Mathis model constant sqrt(3/2).
MATHIS_C = math.sqrt(3.0 / 2.0)


def mathis_throughput(
    rtt_s: float,
    loss: float = DEFAULT_LOSS,
    mss: int = DEFAULT_MSS,
    window: int = DEFAULT_WINDOW,
) -> float:
    """Steady-state TCP throughput in **bytes per second**.

    ``min(window, MSS * sqrt(3/2) / sqrt(loss)) / RTT`` — the loss-based
    Mathis bound, capped by the receive window.

    Args:
        rtt_s: Round-trip time in seconds (> 0).
        loss: Packet loss probability (> 0; a loss of 0 would make the
            Mathis term infinite, so the window cap would apply alone —
            pass ``loss=0`` explicitly to get pure window-limited rate).
        mss: Maximum segment size in bytes.
        window: Maximum window in bytes.
    """
    if rtt_s <= 0:
        raise ValueError(f"RTT must be positive, got {rtt_s}")
    if loss < 0:
        raise ValueError(f"loss must be non-negative, got {loss}")
    if loss == 0:
        effective_window = float(window)
    else:
        effective_window = min(float(window), mss * MATHIS_C / math.sqrt(loss))
    return effective_window / rtt_s


def throughput_mbps(rtt_ms: float, **kwargs: float) -> float:
    """Convenience wrapper: RTT in milliseconds -> throughput in Mbit/s."""
    return mathis_throughput(rtt_ms / 1000.0, **kwargs) * 8 / 1e6
