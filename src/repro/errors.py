"""Exception hierarchy for the CYRUS reproduction.

All library errors derive from :class:`CyrusError` so callers can catch a
single base class.  Subsystem-specific failures get their own subclasses
because callers react to them differently: a :class:`CSPUnavailableError`
during download triggers re-selection of a different provider, while a
:class:`ShareIntegrityError` indicates corrupted data that no retry fixes.
"""

from __future__ import annotations


class CyrusError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(CyrusError):
    """Invalid user-supplied configuration (e.g. t > n, epsilon <= 0)."""


class CodingError(CyrusError):
    """Erasure coding failure (bad parameters, singular dispersal matrix)."""


class InsufficientSharesError(CodingError):
    """Fewer than ``t`` distinct shares were supplied for reconstruction."""


class ShareIntegrityError(CodingError):
    """A share's content does not match its recorded identity."""


class ChunkingError(CyrusError):
    """Content-defined chunking failed (bad window/boundary parameters)."""


class CSPError(CyrusError):
    """Base class for cloud-provider failures."""

    def __init__(self, message: str, csp_id: str | None = None):
        super().__init__(message)
        self.csp_id = csp_id


class CSPUnavailableError(CSPError):
    """The provider could not be contacted (outage or removal)."""


class CSPAuthError(CSPError):
    """Authentication with the provider failed."""


class CSPQuotaExceededError(CSPError):
    """The provider refused an upload because the account is full."""


class ObjectNotFoundError(CSPError):
    """The requested object does not exist at the provider."""


class MetadataError(CyrusError):
    """Metadata tree corruption or decoding failure."""


class ConflictError(CyrusError):
    """An unresolved file conflict blocks the requested operation."""


class SelectionError(CyrusError):
    """The download-selection problem is infeasible (not enough live CSPs)."""


class ReliabilityError(CyrusError):
    """No share count ``n`` can satisfy the requested failure bound."""


class TransferError(CyrusError):
    """A share transfer failed after exhausting retries."""
