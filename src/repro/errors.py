"""Exception hierarchy for the CYRUS reproduction.

All library errors derive from :class:`CyrusError` so callers can catch a
single base class.  Subsystem-specific failures get their own subclasses
because callers react to them differently: a :class:`CSPUnavailableError`
during download triggers re-selection of a different provider, while a
:class:`ShareIntegrityError` indicates corrupted data that no retry fixes.

Failure handling (Section 5.5) additionally needs a *transient vs
permanent* classification: a provider outage may clear on its own, so the
retry policy backs off and tries again, while an expired token or an
exhausted quota will fail identically on every retry and must be routed
to a different provider (or surfaced) immediately.  Each error class
carries a ``retryable`` flag; :func:`is_retryable` classifies arbitrary
exceptions.
"""

from __future__ import annotations

from dataclasses import dataclass


class CyrusError(Exception):
    """Base class for all errors raised by this library."""

    #: Whether retrying the same operation against the same target can
    #: plausibly succeed.  Overridden per subclass; see :func:`is_retryable`.
    retryable = False


class ConfigurationError(CyrusError):
    """Invalid user-supplied configuration (e.g. t > n, epsilon <= 0)."""


class CodingError(CyrusError):
    """Erasure coding failure (bad parameters, singular dispersal matrix)."""


class InsufficientSharesError(CodingError):
    """Fewer than ``t`` distinct shares were supplied for reconstruction."""


class ShareIntegrityError(CodingError):
    """A share's content does not match its recorded identity."""


class ChunkingError(CyrusError):
    """Content-defined chunking failed (bad window/boundary parameters)."""


class CSPError(CyrusError):
    """Base class for cloud-provider failures."""

    def __init__(self, message: str, csp_id: str | None = None):
        super().__init__(message)
        self.csp_id = csp_id

    def __str__(self) -> str:
        # failure logs must identify the provider; messages that already
        # carry the id elsewhere still gain an unambiguous prefix
        base = super().__str__()
        if self.csp_id is not None:
            return f"[{self.csp_id}] {base}"
        return base

    def is_retryable(self) -> bool:
        """Whether a retry against the same provider can plausibly succeed."""
        return self.retryable


class CSPUnavailableError(CSPError):
    """The provider could not be contacted (outage or removal).

    Transient: outages end, so the retry policy backs off and re-tries.
    """

    retryable = True


class CSPTimeoutError(CSPUnavailableError):
    """A provider operation exceeded its per-operation deadline.

    A timeout is indistinguishable from a short outage or a saturated
    link, so it classifies as transient.
    """


class CircuitOpenError(CSPUnavailableError):
    """The provider's circuit breaker is open; the call was not dispatched.

    Not retryable *on this provider*: the breaker exists precisely to
    stop hammering it.  Callers should fail over to an alternate and let
    the half-open probe decide when the provider is back.
    """

    retryable = False


class CSPAuthError(CSPError):
    """Authentication with the provider failed (permanent until re-auth)."""


class CSPQuotaExceededError(CSPError):
    """The provider refused an upload because the account is full.

    Permanent: retrying the same upload cannot free space.
    """


class ObjectNotFoundError(CSPError):
    """The requested object does not exist at the provider.

    Permanent, and *not* a provider-health failure: the provider
    answered; the object is simply gone.
    """


class MetadataError(CyrusError):
    """Metadata tree corruption or decoding failure."""


class TenantQuotaError(CyrusError):
    """A tenant's storage admission was refused: the write would exceed
    the tenant's fleet-assigned quota.

    Distinct from :class:`CSPQuotaExceededError` (a *provider account*
    ran out of space mid-transfer): admission is refused before any
    byte is dispatched, so there is nothing to retry, roll back or
    re-route — the tenant must delete data or be granted more quota.
    """


class ConflictError(CyrusError):
    """An unresolved file conflict blocks the requested operation."""


class SelectionError(CyrusError):
    """The download-selection problem is infeasible (not enough live CSPs)."""


class ReliabilityError(CyrusError):
    """No share count ``n`` can satisfy the requested failure bound."""


@dataclass(frozen=True)
class Attempt:
    """One recorded try of a share transfer against one provider.

    Exhaustion errors carry the full attempt history so operators can
    see *which* providers failed *how* without re-running the transfer.
    """

    csp_id: str
    round_no: int
    ok: bool
    error: str | None = None
    error_type: str | None = None

    def __str__(self) -> str:
        if self.ok:
            return f"round {self.round_no}: {self.csp_id} ok"
        return (
            f"round {self.round_no}: {self.csp_id} failed "
            f"({self.error_type}: {self.error})"
        )


class TransferError(CyrusError):
    """A share transfer failed after exhausting retries.

    ``attempts`` holds the per-CSP :class:`Attempt` history that led to
    exhaustion (empty when the failure happened before any dispatch).
    """

    def __init__(self, message: str, attempts: tuple[Attempt, ...] | list = ()):
        super().__init__(message)
        self.attempts: tuple[Attempt, ...] = tuple(attempts)

    def attempts_by_csp(self) -> dict[str, list[Attempt]]:
        """The attempt history grouped by provider."""
        out: dict[str, list[Attempt]] = {}
        for attempt in self.attempts:
            out.setdefault(attempt.csp_id, []).append(attempt)
        return out


class ShareGatherError(TransferError, InsufficientSharesError):
    """Retry exhaustion while gathering a chunk's shares.

    Both a :class:`TransferError` (it carries the attempt history) and
    an :class:`InsufficientSharesError` (fewer than ``t`` shares were
    obtained), so existing callers catching either class keep working.
    """


#: Exception types that never benefit from a same-target retry even
#: though they are not CSP errors.
_PERMANENT_TYPES = (ShareIntegrityError,)


def is_retryable(exc: BaseException) -> bool:
    """Transient/permanent classification for arbitrary exceptions.

    Transient (retry the same provider after a backoff):
    :class:`CSPUnavailableError` and :class:`CSPTimeoutError`.
    Permanent (re-route or surface immediately): auth failures, quota
    exhaustion, missing objects, integrity violations, open breakers,
    and anything unknown.
    """
    if isinstance(exc, _PERMANENT_TYPES):
        return False
    if isinstance(exc, CyrusError):
        if isinstance(exc, CSPError):
            return exc.is_retryable()
        return exc.retryable
    return False
