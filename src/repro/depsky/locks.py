"""DepSky's write-lock protocol.

Paper Section 7.3: DepSky's upload "require[s] two round-trip
communications with CSPs to set lock files, preventing simultaneous
updates, and a random backoff time after setting the lock."  We model
the protocol's cost and its contention behaviour: a writer PUTs a lock
object at every CSP (round trip 1), LISTs lock objects to detect
competing writers (round trip 2), backs off a random interval, and
rechecks; on contention it releases and retries.
"""

from __future__ import annotations

import random

from repro.core.transfer import OpKind, OpResult, TransferEngine, TransferOp
from repro.errors import ConflictError

#: Lock objects are tiny JSON blobs.
_LOCK_SIZE = 64


class LockProtocol:
    """Acquire/release write locks across all CSPs.

    Args:
        engine: Transfer engine (timed or direct).
        csp_ids: Every CSP in the cloud-of-clouds.
        backoff_range: (lo, hi) seconds of random post-lock backoff.
        max_attempts: Contention retries before giving up.
        seed: Deterministic backoff draws for reproducible benches.
    """

    def __init__(
        self,
        engine: TransferEngine,
        csp_ids: list[str],
        backoff_range: tuple[float, float] = (0.5, 1.0),
        max_attempts: int = 5,
        seed: int = 0,
    ):
        self.engine = engine
        self.csp_ids = list(csp_ids)
        self.backoff_range = backoff_range
        self.max_attempts = max_attempts
        self._rng = random.Random(seed)

    def _lock_name(self, object_key: str, writer_id: str) -> str:
        return f"ds-lock-{object_key}-{writer_id}"

    def acquire(self, object_key: str, writer_id: str) -> list[OpResult]:
        """Two round trips + backoff; raises ConflictError on contention."""
        results: list[OpResult] = []
        for _attempt in range(self.max_attempts):
            # round trip 1: place our lock at every CSP
            put_ops = [
                TransferOp(
                    kind=OpKind.PUT,
                    csp_id=csp,
                    name=self._lock_name(object_key, writer_id),
                    data=writer_id.encode("utf-8").ljust(_LOCK_SIZE, b"\0"),
                )
                for csp in self.csp_ids
            ]
            results.extend(self.engine.execute(put_ops))
            # random backoff after setting the lock
            backoff = self._rng.uniform(*self.backoff_range)
            self._advance(backoff)
            # round trip 2: list locks to detect competing writers
            contended = False
            prefix = f"ds-lock-{object_key}-"
            for csp in self.csp_ids:
                try:
                    infos = self.engine.provider(csp).list(prefix=prefix)
                except Exception:  # provider down: can't see contention there
                    continue
                owners = {info.name[len(prefix):] for info in infos}
                if owners - {writer_id}:
                    contended = True
            # the listing itself costs one RTT per CSP (zero-byte GETs)
            probe_ops = [
                TransferOp(kind=OpKind.GET, csp_id=csp,
                           name=self._lock_name(object_key, writer_id), size=_LOCK_SIZE)
                for csp in self.csp_ids
            ]
            results.extend(self.engine.execute(probe_ops))
            if not contended:
                return results
            self.release(object_key, writer_id)
            self._advance(self._rng.uniform(*self.backoff_range))
        raise ConflictError(
            f"DepSky lock on {object_key!r} contended after "
            f"{self.max_attempts} attempts"
        )

    def release(self, object_key: str, writer_id: str) -> None:
        """Remove our lock objects (best effort)."""
        ops = [
            TransferOp(
                kind=OpKind.DELETE,
                csp_id=csp,
                name=self._lock_name(object_key, writer_id),
            )
            for csp in self.csp_ids
        ]
        self.engine.execute(ops)

    def _advance(self, seconds: float) -> None:
        clock = self.engine.clock
        advance = getattr(clock, "advance", None)
        if callable(advance):
            advance(seconds)
        # wall clocks simply wait zero time in tests; the backoff cost is
        # what the simulation measures
