"""DepSky's write-lock protocol, with lease expiry.

Paper Section 7.3: DepSky's upload "require[s] two round-trip
communications with CSPs to set lock files, preventing simultaneous
updates, and a random backoff time after setting the lock."  We model
the protocol's cost and its contention behaviour: a writer PUTs a lock
object at every CSP (round trip 1), LISTs lock objects to detect
competing writers (round trip 2), backs off a random interval, and
rechecks; on contention it releases and retries.

Lock objects carry a **lease**: a JSON payload naming the writer and an
expiry stamp (``now + lease_ttl`` on the protocol's clock).  A writer
that crashes between acquire and release leaves its lock objects
behind; without leases that lock blocks every later writer forever.
With leases, an acquiring writer that sees a foreign lock downloads it,
and if the lease has expired, *sweeps* it — deletes the stale lock at
every CSP — instead of treating it as contention.  Legacy locks (bare
writer-id payloads from before leases) and unparseable payloads are
conservatively treated as live.
"""

from __future__ import annotations

import json
import random

from repro.core.transfer import OpKind, OpResult, TransferEngine, TransferOp
from repro.errors import ConflictError

#: Lock objects are tiny JSON blobs, padded to a fixed size.
_LOCK_SIZE = 64

#: Metric name (mirrors the repro.obs constant style).
LOCK_LEASES_SWEPT = "cyrus_lock_leases_swept_total"


def _parse_lease(blob: bytes) -> float | None:
    """Expiry stamp from a lock payload, or None when there is none.

    Pre-lease lock objects held only the writer id; those (and any
    payload we cannot parse) return None and are treated as live —
    never steal a lock we cannot prove stale.
    """
    try:
        doc = json.loads(blob.rstrip(b"\0").decode("utf-8"))
        return float(doc["expires"])
    except (ValueError, KeyError, TypeError, UnicodeDecodeError):
        return None


class LockProtocol:
    """Acquire/release write locks across all CSPs.

    Args:
        engine: Transfer engine (timed or direct).
        csp_ids: Every CSP in the cloud-of-clouds.
        backoff_range: (lo, hi) seconds of random post-lock backoff.
        max_attempts: Contention retries before giving up.
        seed: Deterministic backoff draws for reproducible benches.
        lease_ttl: Seconds a lock stays valid without renewal; a
            crashed holder's lock is swept by the next acquirer once
            the lease expires.
    """

    def __init__(
        self,
        engine: TransferEngine,
        csp_ids: list[str],
        backoff_range: tuple[float, float] = (0.5, 1.0),
        max_attempts: int = 5,
        seed: int = 0,
        lease_ttl: float = 30.0,
    ):
        self.engine = engine
        self.csp_ids = list(csp_ids)
        self.backoff_range = backoff_range
        self.max_attempts = max_attempts
        self.lease_ttl = lease_ttl
        self._rng = random.Random(seed)
        self.leases_swept = 0

    def _lock_name(self, object_key: str, writer_id: str) -> str:
        return f"ds-lock-{object_key}-{writer_id}"

    def _lease_payload(self, writer_id: str) -> bytes:
        doc = {
            "writer": writer_id,
            "expires": self.engine.clock.now() + self.lease_ttl,
        }
        blob = json.dumps(doc, separators=(",", ":")).encode("utf-8")
        return blob.ljust(_LOCK_SIZE, b"\0")

    def acquire(self, object_key: str, writer_id: str) -> list[OpResult]:
        """Two round trips + backoff; raises ConflictError on contention."""
        results: list[OpResult] = []
        for _attempt in range(self.max_attempts):
            # round trip 1: place our leased lock at every CSP
            put_ops = [
                TransferOp(
                    kind=OpKind.PUT,
                    csp_id=csp,
                    name=self._lock_name(object_key, writer_id),
                    data=self._lease_payload(writer_id),
                )
                for csp in self.csp_ids
            ]
            results.extend(self.engine.execute(put_ops))
            # random backoff after setting the lock
            backoff = self._rng.uniform(*self.backoff_range)
            self._advance(backoff)
            # round trip 2: list locks to detect competing writers
            prefix = f"ds-lock-{object_key}-"
            foreign: dict[str, str] = {}  # owner -> a CSP holding its lock
            for csp in self.csp_ids:
                try:
                    infos = self.engine.provider(csp).list(prefix=prefix)
                except Exception:  # provider down: can't see contention there
                    continue
                for info in infos:
                    owner = info.name[len(prefix):]
                    if owner != writer_id:
                        foreign.setdefault(owner, csp)
            # judge each foreign lock's lease: expired ones belong to a
            # crashed writer and are swept, not contended
            contended = False
            now = self.engine.clock.now()
            for owner, csp in sorted(foreign.items()):
                try:
                    blob = self.engine.provider(csp).download(
                        self._lock_name(object_key, owner)
                    )
                except Exception:
                    contended = True  # vanished or unreadable: assume live
                    continue
                expires = _parse_lease(blob)
                if expires is not None and expires <= now:
                    self._sweep_stale(object_key, owner)
                else:
                    contended = True
            # the listing itself costs one RTT per CSP (zero-byte GETs)
            probe_ops = [
                TransferOp(kind=OpKind.GET, csp_id=csp,
                           name=self._lock_name(object_key, writer_id), size=_LOCK_SIZE)
                for csp in self.csp_ids
            ]
            results.extend(self.engine.execute(probe_ops))
            if not contended:
                return results
            self.release(object_key, writer_id)
            self._advance(self._rng.uniform(*self.backoff_range))
        raise ConflictError(
            f"DepSky lock on {object_key!r} contended after "
            f"{self.max_attempts} attempts"
        )

    def release(self, object_key: str, writer_id: str) -> None:
        """Remove our lock objects (best effort)."""
        ops = [
            TransferOp(
                kind=OpKind.DELETE,
                csp_id=csp,
                name=self._lock_name(object_key, writer_id),
            )
            for csp in self.csp_ids
        ]
        self.engine.execute(ops)

    def _sweep_stale(self, object_key: str, owner: str) -> None:
        """Delete a crashed writer's expired lock at every CSP."""
        self.release(object_key, owner)
        self.leases_swept += 1
        obs = getattr(self.engine, "obs", None)
        if obs is not None:
            obs.metrics.inc(LOCK_LEASES_SWEPT)

    def _advance(self, seconds: float) -> None:
        clock = self.engine.clock
        advance = getattr(clock, "advance", None)
        if callable(advance):
            advance(seconds)
        # wall clocks simply wait zero time in tests; the backoff cost is
        # what the simulation measures
