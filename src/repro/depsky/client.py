"""DepSky-style cloud-of-clouds client on the CYRUS substrate.

Files are not chunked (DepSky stores whole objects).  Uploads lock,
back off, start a share transfer to *every* CSP and cancel the rest
once ``n`` complete; metadata is fully replicated at every CSP.
Downloads fetch metadata from the fastest CSP and then greedily fetch
``t`` shares from the fastest CSPs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.transfer import OpKind, OpResult, TransferEngine, TransferOp
from repro.core.uploader import get_sharer
from repro.depsky.locks import LockProtocol
from repro.erasure import Share
from repro.errors import InsufficientSharesError, ObjectNotFoundError, TransferError
from repro.util.hashing import sha1_hex
from repro.util.serialization import canonical_dumps, canonical_loads


@dataclass
class DepSkyReport:
    """Timing and placement outcome of one DepSky operation."""

    started: float
    finished: float
    bytes_moved: int
    shares_per_csp: dict[str, int] = field(default_factory=dict)
    data: bytes | None = None
    download_csps: tuple[str, ...] = ()

    @property
    def duration(self) -> float:
        return self.finished - self.started


class DepSkyClient:
    """The comparison baseline of paper Section 7.3.

    Args:
        engine: Transfer engine over the same providers CYRUS uses.
        csp_ids: The cloud-of-clouds membership.
        key: Coding key (DepSky's secret-sharing secret).
        t, n: Reconstruction threshold and target share count.
        writer_id: This client's identity for lock objects.
        backoff_range: Post-lock random backoff bounds (seconds).
        seed: Deterministic backoff.
        lease_ttl: Lock lease lifetime in seconds; a crashed writer's
            lock is swept by the next acquirer after this long.
    """

    def __init__(
        self,
        engine: TransferEngine,
        csp_ids: list[str],
        key: str,
        t: int = 2,
        n: int = 3,
        writer_id: str = "writer-1",
        backoff_range: tuple[float, float] = (0.5, 1.0),
        seed: int = 0,
        lease_ttl: float = 30.0,
    ):
        if n > len(csp_ids):
            raise TransferError(
                f"DepSky needs n <= #CSPs, got n={n} with {len(csp_ids)} CSPs"
            )
        self.engine = engine
        self.csp_ids = list(csp_ids)
        self.key = key
        self.t = t
        self.n = n
        self.writer_id = writer_id
        self.locks = LockProtocol(
            engine, self.csp_ids, backoff_range=backoff_range, seed=seed,
            lease_ttl=lease_ttl,
        )
        # cumulative per-CSP stored-share counter (Figure 18)
        self.shares_stored: dict[str, int] = {c: 0 for c in self.csp_ids}

    # ------------------------------------------------------------------

    def _share_name(self, name: str, index: int) -> str:
        return f"ds-share-{sha1_hex(name.encode())}-{index:03d}"

    def _meta_name(self, name: str) -> str:
        return f"ds-meta-{sha1_hex(name.encode())}"

    def upload(self, name: str, data: bytes) -> DepSkyReport:
        """DepSky write: lock (2 RTT) -> backoff -> scatter-all -> metadata."""
        started = self.engine.clock.now()
        lock_results = self.locks.acquire(name, self.writer_id)
        # encode one share per CSP; the first n to finish are kept
        sharer = get_sharer(self.key, self.t, len(self.csp_ids))
        shares = sharer.split(data)
        group = f"dsu-{name}-{started}"
        ops = [
            TransferOp(
                kind=OpKind.PUT,
                csp_id=csp,
                name=self._share_name(name, share.index),
                data=share.data,
                group=group,
            )
            for csp, share in zip(self.csp_ids, shares)
        ]
        results = self.engine.execute(ops, group_quota={group: self.n})
        landed: dict[int, str] = {}
        for op, result in zip(ops, results):
            if result.ok:
                index = int(op.name.rsplit("-", 1)[-1])
                landed[index] = op.csp_id
                self.shares_stored[op.csp_id] += 1
        if len(landed) < self.t:
            self.locks.release(name, self.writer_id)
            raise TransferError(
                f"DepSky stored only {len(landed)} shares of {name!r}"
            )
        # metadata replicated in full at every CSP
        meta = canonical_dumps(
            {
                "name": name,
                "size": len(data),
                "t": self.t,
                "m": len(self.csp_ids),
                "shares": {str(i): c for i, c in sorted(landed.items())},
                "digest": sha1_hex(data),
            }
        )
        meta_ops = [
            TransferOp(kind=OpKind.PUT_META, csp_id=csp,
                       name=self._meta_name(name), data=meta)
            for csp in self.csp_ids
        ]
        meta_results = self.engine.execute(meta_ops)
        self.locks.release(name, self.writer_id)
        finished = self.engine.clock.now()
        moved = sum(r.op.payload_size() for r in results if r.ok)
        moved += sum(r.op.payload_size() for r in meta_results if r.ok)
        return DepSkyReport(
            started=started,
            finished=finished,
            bytes_moved=moved,
            shares_per_csp={c: sum(1 for x in landed.values() if x == c)
                            for c in self.csp_ids},
        )

    # ------------------------------------------------------------------

    def download(self, name: str) -> DepSkyReport:
        """DepSky read: metadata from fastest CSP, then greedy share GETs."""
        started = self.engine.clock.now()
        caps = self.engine.link_caps("down")
        by_speed = sorted(self.csp_ids, key=lambda c: (-caps.get(c, 0.0), c))
        meta_blob = None
        meta_size = 256
        for csp in by_speed:
            results = self.engine.execute(
                [TransferOp(kind=OpKind.GET_META, csp_id=csp,
                            name=self._meta_name(name), size=meta_size)]
            )
            if results[0].ok:
                meta_blob = results[0].data
                break
        if meta_blob is None:
            raise ObjectNotFoundError(f"no DepSky metadata for {name!r}")
        meta = canonical_loads(meta_blob)
        share_map = {int(i): c for i, c in meta["shares"].items()}
        share_size = max(1, -(-meta["size"] // meta["t"]))
        # greedy: the t fastest CSPs that hold a share
        holders = sorted(share_map.items(), key=lambda kv: (-caps.get(kv[1], 0.0), kv[0]))
        chosen = holders[: meta["t"]]
        ops = [
            TransferOp(kind=OpKind.GET, csp_id=csp,
                       name=self._share_name(name, index), size=share_size)
            for index, csp in chosen
        ]
        results = self.engine.execute(ops)
        got: list[Share] = []
        served: list[str] = []
        for (index, csp), result in zip(chosen, results):
            if result.ok:
                served.append(csp)
                got.append(
                    Share(index=index, data=result.data, t=meta["t"],
                          n=meta["m"], chunk_size=meta["size"])
                )
        # fall back through slower CSPs on failures
        if len(got) < meta["t"]:
            have = {s.index for s in got}
            for index, csp in holders[meta["t"]:]:
                if len(got) >= meta["t"]:
                    break
                if index in have:
                    continue
                res = self.engine.execute(
                    [TransferOp(kind=OpKind.GET, csp_id=csp,
                                name=self._share_name(name, index),
                                size=share_size)]
                )[0]
                if res.ok:
                    served.append(csp)
                    got.append(
                        Share(index=index, data=res.data, t=meta["t"],
                              n=meta["m"], chunk_size=meta["size"])
                    )
        if len(got) < meta["t"]:
            raise InsufficientSharesError(
                f"DepSky fetched {len(got)} shares of {name!r}, "
                f"need {meta['t']}"
            )
        sharer = get_sharer(self.key, meta["t"], meta["m"])
        data = sharer.join(got)
        if sha1_hex(data) != meta["digest"]:
            raise TransferError(f"DepSky digest mismatch for {name!r}")
        finished = self.engine.clock.now()
        return DepSkyReport(
            started=started,
            finished=finished,
            bytes_moved=sum(r.op.payload_size() for r in results if r.ok),
            data=data,
            download_csps=tuple(served),
        )
