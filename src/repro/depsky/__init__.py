"""DepSky baseline, implemented within CYRUS's substrate (paper §7.3).

DepSky (Bessani et al., EuroSys 2011) is the closest prior
cloud-of-clouds system.  Its protocols differ from CYRUS's exactly where
the paper's comparison probes:

* writes take two round-trips to set lock files plus a random backoff
  before data moves (CYRUS uploads immediately and detects conflicts
  later);
* uploads start a share transfer to *every* CSP and cancel stragglers
  once n finish (CYRUS sends exactly n shares to hash-selected CSPs);
* downloads greedily use the fastest CSPs (CYRUS solves the Section 4.3
  optimisation).
"""

from repro.depsky.client import DepSkyClient, DepSkyReport
from repro.depsky.locks import LockProtocol

__all__ = ["DepSkyClient", "DepSkyReport", "LockProtocol"]
