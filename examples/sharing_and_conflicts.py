#!/usr/bin/env python3
"""File sharing between autonomous clients, with conflict resolution.

Two devices (think: Alice's laptop and Bob's desktop) share one CYRUS
cloud.  They cannot talk to each other directly — everything flows
through the providers, exactly as in the paper's Figure 1.  When both
edit the same file concurrently, CYRUS lets both uploads through and
detects the conflict after the fact (Section 5.4); resolution keeps the
newest version and preserves the loser as a conflicted copy.

Run:  python examples/sharing_and_conflicts.py
"""

from repro import CyrusClient, CyrusConfig
from repro.csp import InMemoryCSP


def main() -> None:
    csps = [InMemoryCSP(f"csp-{i}") for i in range(4)]
    config = CyrusConfig(key="team-shared-key", t=2, n=3,
                         chunk_min=1024, chunk_avg=4096, chunk_max=32768)

    with CyrusClient.create(csps, config, client_id="alice-laptop") as alice, \
            CyrusClient.create(csps, config, client_id="bob-desktop") as bob:
        # --- normal sharing -----------------------------------------------
        alice.put("minutes.md", b"# Meeting minutes\n- agenda item 1\n" * 30)
        entry = bob.list_files()[0]
        print(f"bob sees {entry.name!r} ({entry.size} bytes) after syncing")
        assert bob.get("minutes.md").data.startswith(b"# Meeting minutes")

        # --- concurrent edits -> conflict ----------------------------------
        # both start from the same version, then upload without seeing each
        # other (e.g. both were offline); neither blocks on a lock
        alice.sync()
        bob.sync()
        alice.uploader.upload(
            "minutes.md", b"# Minutes (Alice's edit)\n" * 40,
            client_id="alice-laptop",
        )
        bob.uploader.upload(
            "minutes.md", b"# Minutes (Bob's edit)\n" * 45,
            client_id="bob-desktop",
        )

        report = alice.sync()
        for conflict in report.conflicts:
            print(f"conflict detected: {conflict.kind} on {conflict.name!r} "
                  f"({len(conflict.node_ids)} concurrent versions)")

        # --- resolution ------------------------------------------------------
        created = alice.resolve_conflicts()
        print(f"resolution kept the newest version; preserved: {created}")

        bob.sync()
        files = [e.name for e in bob.list_files(sync_first=False)]
        print(f"bob's view after resolution: {files}")
        assert not bob.conflicts()

        winner = bob.get("minutes.md", sync_first=False)
        print(f"winning content starts with: {winner.data[:30]!r}")
        loser_name = next(n for n in files if "conflicted copy" in n)
        loser = bob.get(loser_name, sync_first=False)
        print(f"losing content preserved under {loser_name!r}: "
              f"{loser.data[:30]!r}")

    # --- a third device recovers everything from the cloud alone ----------
    with CyrusClient.create(csps, config, client_id="alice-phone") as phone:
        report = phone.recover()
        print(f"\nfresh device recovered {report.new_nodes} versions from "
              f"the providers alone (no central server, no device-to-device "
              f"sync)")


if __name__ == "__main__":
    main()
