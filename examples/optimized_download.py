#!/usr/bin/env python3
"""The downlink optimiser at work (paper Section 4.3, Figure 14).

Reproduces the paper's testbed comparison in miniature: a 4-fast/3-slow
cloud federation, a multi-chunk file, and three download strategies —
uniform random, round-robin, and CYRUS's Algorithm 1.  Prints each
plan's predicted bottleneck and the realised completion time on the
flow simulator.

Run:  python examples/optimized_download.py
"""

import random

from repro.bench import build_paper_testbed
from repro.core.config import CyrusConfig
from repro.selection import CyrusSelector, RandomSelector, RoundRobinSelector


def main() -> None:
    payload = random.Random(42).randbytes(8_000_000)
    config = CyrusConfig(key="speed-key", t=2, n=4,
                         chunk_min=128 * 1024, chunk_avg=512 * 1024,
                         chunk_max=2 * 1024 * 1024)

    print("testbed: 4 clouds at 15 MB/s, 3 clouds at 2 MB/s "
          "(paper Section 7.2)\n")
    results = {}
    for name, selector in [
        ("random", RandomSelector(seed=1)),
        ("round-robin", RoundRobinSelector()),
        ("CYRUS Algorithm 1", CyrusSelector(resolve_every=4)),
    ]:
        env = build_paper_testbed()
        writer = env.new_client(config, client_id="writer")
        writer.put("video.mov", payload, sync_first=False)

        reader = env.new_client(config, client_id="reader",
                                selector=selector)
        reader.recover()
        report = reader.get("video.mov", sync_first=False)
        assert report.data == payload
        predicted = max(p.bottleneck_time for p in report.plans)
        results[name] = report.duration
        loads = report.plans[0].loads
        print(f"{name:20s} realised {report.duration:6.3f}s  "
              f"(model predicted {predicted:6.3f}s)")

    speedup = results["random"] / results["CYRUS Algorithm 1"]
    print(f"\nCYRUS vs random speedup: {speedup:.2f}x")
    assert results["CYRUS Algorithm 1"] <= min(results.values()) + 1e-9


if __name__ == "__main__":
    main()
