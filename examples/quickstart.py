#!/usr/bin/env python3
"""Quickstart: a CYRUS cloud over four providers in a few lines.

Creates a client-defined cloud, stores a file, reads it back, edits it,
and shows the privacy layout: no single provider holds enough data to
reconstruct anything.

Everything imports from the top-level ``repro`` façade, and the client
is a context manager — ``with`` owns the encode pool and transfer
engine, so there is nothing to remember to shut down.

Run:  python examples/quickstart.py
"""

import os

from repro import CyrusClient, CyrusConfig
from repro.csp import InMemoryCSP


def main() -> None:
    # Four provider accounts — in a real deployment these would be
    # Dropbox/Google Drive/OneDrive/Box connectors or
    # repro.csp.LocalDirectoryCSP instances pointed at mounted storage.
    csps = [InMemoryCSP(f"provider-{i}") for i in range(4)]

    # t=2: no single provider can reconstruct any chunk.
    # n=3: any single provider can fail and the data survives.
    config = CyrusConfig(key="my secret key string", t=2, n=3,
                         chunk_min=4 * 1024, chunk_avg=16 * 1024,
                         chunk_max=128 * 1024)
    with CyrusClient.create(csps, config, client_id="laptop") as client:
        # --- store and fetch ----------------------------------------------
        document = os.urandom(200_000)
        report = client.put("thesis/draft.tex", document)
        print(f"uploaded {report.node.size:,} bytes as {report.new_chunks} "
              f"chunks ({report.bytes_uploaded:,} bytes incl. redundancy)")

        fetched = client.get("thesis/draft.tex")
        assert fetched.data == document
        print("download verified byte-for-byte")

        # --- edit: content-defined chunking dedups the unchanged part ------
        edited = document[:90_000] + b"<<REVISED>>" + document[90_000:]
        report = client.put("thesis/draft.tex", edited)
        print(f"edit re-uploaded only {report.new_chunks} new chunks "
              f"({report.dedup_chunks} deduplicated)")

        # --- versions ------------------------------------------------------
        assert client.get("thesis/draft.tex", version=1).data == document
        print(f"history: {len(client.history('thesis/draft.tex'))} versions, "
              f"all recoverable")

    # --- privacy layout ---------------------------------------------------
    print("\nper-provider view (no provider holds your data or names):")
    for csp in csps:
        sample = csp.list()[0].name if csp.list() else "-"
        print(f"  {csp.csp_id}: {csp.object_count} opaque objects, "
              f"{csp.stored_bytes:,} bytes, e.g. {sample[:20]}...")
    for csp in csps:
        for info in csp.list():
            assert document not in csp.download(info.name)
    print("verified: no provider stores any run of plaintext")


if __name__ == "__main__":
    main()
