#!/usr/bin/env python3
"""Many concurrent CYRUS sessions on one event loop.

The asyncio core exists for exactly this: a server-side process (a sync
gateway, a backup fleet controller) holding *hundreds* of client
sessions open at once.  Every ``async with AsyncCyrusClient(...)``
session on a loop shares one runtime — two bounded thread pools — so
sessions cost a small object each, not a thread pool each.

Each session here owns an independent in-memory provider fleet and does
a real put/get round-trip; a barrier holds every session open at the
same instant so the count is genuine concurrency, not throughput.

Run:  python examples/async_sessions.py
"""

import asyncio
import time

from repro import AsyncCyrusClient, CyrusConfig
from repro.csp import InMemoryCSP

SESSIONS = 200


async def one_session(i: int, all_open: asyncio.Event, state: dict) -> int:
    csps = [InMemoryCSP(f"user{i}-csp{j}") for j in range(4)]
    config = CyrusConfig(key=f"user-{i}-secret", t=2, n=3,
                         parallelism=4 if i % 10 == 0 else 1,
                         chunk_min=1024, chunk_avg=4096, chunk_max=32768)
    async with AsyncCyrusClient(csps, config,
                                client_id=f"device-{i}") as session:
        state["open"] += 1
        state["peak"] = max(state["peak"], state["open"])
        if state["open"] == SESSIONS:
            all_open.set()
        await all_open.wait()  # hold until every session is live

        payload = f"user {i}'s document ".encode() * 200
        await session.put("doc.txt", payload)
        blob = await session.get("doc.txt")
        assert blob.data == payload
        state["open"] -= 1
    return len(payload)


async def run_fleet() -> None:
    all_open = asyncio.Event()
    state = {"open": 0, "peak": 0}
    started = time.perf_counter()
    sizes = await asyncio.gather(
        *(one_session(i, all_open, state) for i in range(SESSIONS))
    )
    elapsed = time.perf_counter() - started
    print(f"{SESSIONS} sessions, all simultaneously open "
          f"(peak {state['peak']}), each stored+verified a file: "
          f"{sum(sizes):,} bytes in {elapsed:.2f}s")


def main() -> None:
    asyncio.run(run_fleet())


if __name__ == "__main__":
    main()
