#!/usr/bin/env python3
"""Traced sync: watch a multi-CSP transfer as spans, metrics and lanes.

Runs a few uploads and downloads on the paper's simulated 4-fast/3-slow
testbed, then shows the three views the observability layer offers:

* a metrics snapshot (per-provider ops, bytes, failures);
* an ASCII per-CSP transfer timeline (the paper's Figure 14 picture);
* a Chrome trace file — open ``cyrus-trace.json`` in
  ``chrome://tracing`` or https://ui.perfetto.dev to see every share
  transfer on its provider's lane.

Run:  python examples/traced_sync.py
"""

import os

from repro.bench import build_paper_testbed
from repro.core.config import CyrusConfig

TRACE_PATH = "cyrus-trace.json"


def main() -> None:
    env = build_paper_testbed()  # 4 clouds at 15 MB/s, 3 at 2 MB/s
    config = CyrusConfig(key="my secret key string", t=2, n=3)
    client = env.new_client(config, client_id="laptop")

    for i in range(3):
        name = f"photos/img-{i}.raw"
        data = os.urandom(2_000_000 + 500_000 * i)
        client.put(name, data, sync_first=False)
        assert client.get(name, sync_first=False).data == data
    client.sync()

    # --- metrics: one registry fed by every layer ------------------------
    snap = env.obs.snapshot()
    print("per-provider transfer ledger:")
    for csp_id in env.csp_ids():
        ops = snap.counter_total("cyrus_ops_total", csp=csp_id, outcome="ok")
        up = snap.counter_total("cyrus_transfer_bytes_total",
                                csp=csp_id, direction="up")
        down = snap.counter_total("cyrus_transfer_bytes_total",
                                  csp=csp_id, direction="down")
        print(f"  {csp_id:6} {int(ops):4d} ops  "
              f"{int(up):>9,} B up  {int(down):>9,} B down")

    # --- spans: every put/get is a tree of timed stages ------------------
    tracer = env.obs.tracer
    assert tracer.check_well_formed() == []
    uploads = tracer.find("upload")
    print(f"\n{len(uploads)} upload spans "
          f"(chunk -> scatter -> publish_meta under each):")
    for span in uploads:
        stages = ", ".join(
            f"{c.name} {c.duration:.3f}s" for c in span.children
        )
        print(f"  {span.attrs['file']}: {span.duration:.3f}s ({stages})")

    # --- timeline: the Figure 14 per-CSP parallel-transfer picture -------
    timeline = env.obs.timeline()
    print(f"\nshare transfers per CSP lane (makespan "
          f"{timeline.makespan:.3f}s simulated):")
    print(timeline.render_ascii(width=64))

    # --- Chrome trace ----------------------------------------------------
    with open(TRACE_PATH, "w") as fh:
        fh.write(tracer.to_chrome_json())
    print(f"\nwrote {TRACE_PATH} — open it in chrome://tracing "
          f"or ui.perfetto.dev")


if __name__ == "__main__":
    main()
