#!/usr/bin/env python3
"""A deduplicating backup tool over on-disk providers.

Uses :class:`repro.csp.LocalDirectoryCSP` — real, persistent providers
backed by directories (stand-ins for mounted cloud drives or private
storage servers).  Backs up evolving versions of a working set and
shows how content-defined chunking keeps incremental backups tiny, then
recovers the whole history from the directories alone.

Run:  python examples/dedup_backup.py
"""

import shutil
import tempfile
from pathlib import Path

from repro import CyrusClient, CyrusConfig
from repro.csp import LocalDirectoryCSP
from repro.workloads import edited_copy, random_bytes


def provider_bytes(roots) -> int:
    return sum(
        f.stat().st_size for root in roots for f in Path(root).iterdir()
    )


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="cyrus-backup-"))
    try:
        roots = [workdir / f"drive-{i}" for i in range(4)]
        csps = [LocalDirectoryCSP(f"drive-{i}", root)
                for i, root in enumerate(roots)]
        config = CyrusConfig(key="backup-key", t=2, n=3,
                             chunk_min=8 * 1024, chunk_avg=32 * 1024,
                             chunk_max=256 * 1024)
        documents = {
            "projects/report.docx": random_bytes(400_000, seed=1),
            "projects/data.csv": random_bytes(900_000, seed=2),
            "photos/team.jpg": random_bytes(600_000, seed=3),
        }
        with CyrusClient.create(csps, config,
                                client_id="backup-agent") as client:
            # --- day 0: initial backup of a working set -----------------
            for name, content in documents.items():
                client.put(name, content)
            day0 = provider_bytes(roots)
            logical = sum(len(c) for c in documents.values())
            print(f"day 0: {logical:,} logical bytes -> {day0:,} stored "
                  f"({day0 / logical:.2f}x, the n/t redundancy factor)")

            # --- days 1-3: small edits; incremental cost stays small -----
            for day in range(1, 4):
                documents["projects/report.docx"] = edited_copy(
                    documents["projects/report.docx"], seed=10 + day,
                    edits=3, max_edit=4096,
                )
                report = client.put("projects/report.docx",
                                    documents["projects/report.docx"])
                grown = provider_bytes(roots)
                print(f"day {day}: edit stored {report.new_chunks} new "
                      f"chunks, {report.dedup_chunks} deduplicated "
                      f"(+{grown - day0:,} bytes total since day 0)")
                day0 = grown

        # --- disaster: the laptop is gone; restore from the drives -------
        with CyrusClient.create(csps, config,
                                client_id="new-laptop") as fresh:
            fresh.recover()
            for name, content in documents.items():
                assert fresh.get(name, sync_first=False).data == content
            print(f"\nrestore on a fresh machine: {len(documents)} files OK")

            history = fresh.history("projects/report.docx")
            print(f"report.docx history: {len(history)} versions; "
                  f"day-0 copy recovered "
                  f"{len(fresh.get('projects/report.docx', version=3, sync_first=False).data):,}"
                  f" bytes")

        # --- and one drive can be lost entirely ---------------------------
        shutil.rmtree(roots[0])
        roots[0].mkdir()
        with CyrusClient.create(csps, config,
                                client_id="survivor") as survivor:
            survivor.recover()
            restored = survivor.get("projects/data.csv", sync_first=False)
            assert restored.data == documents["projects/data.csv"]
        print("drive-0 wiped: everything still restorable from the rest")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
