#!/usr/bin/env python3
"""CYRUS over heterogeneous vendor APIs (paper Sections 3.1 and 6).

Builds a federation out of three *different* emulated vendor API
families — Dropbox-style (JSON, path-keyed, overwrite), Drive-style
(JSON, opaque file ids, duplicate-on-upload) and S3-style (XML, HMAC
request signatures) — and runs the unmodified CYRUS client across them.
This is the paper's CSP-agnosticism claim made executable: everything
above the five-primitive connector interface neither knows nor cares
which vendor holds which share.

Run:  python examples/multi_vendor.py
"""

import os

from repro import CyrusClient, CyrusConfig
from repro.csp import Credentials
from repro.csp.rest import (
    DriveStyleDialect,
    DropboxStyleDialect,
    InProcessRestServer,
    RestConnectorCSP,
    S3StyleDialect,
)
from repro.csp.rest.dialects import S3StyleDialect as S3


def main() -> None:
    # --- three vendors, three wire dialects --------------------------------
    dropbox_srv = InProcessRestServer(DropboxStyleDialect(),
                                      provider_secret="dbx")
    drive_srv = InProcessRestServer(DriveStyleDialect(),
                                    provider_secret="gdr")
    s3_srv = InProcessRestServer(S3StyleDialect(), provider_secret="s3!")

    providers = [
        RestConnectorCSP("dropbox", dropbox_srv,
                         Credentials("alice", "dbx-app-secret")),
        RestConnectorCSP("gdrive", drive_srv,
                         Credentials("alice", "gdr-app-secret")),
        RestConnectorCSP(
            "s3", s3_srv,
            Credentials("alice", S3.account_secret(s3_srv.state, "alice")),
        ),
    ]

    config = CyrusConfig(key="vendor-agnostic-key", t=2, n=3,
                         chunk_min=4 * 1024, chunk_avg=16 * 1024,
                         chunk_max=64 * 1024)
    with CyrusClient.create(providers, config, client_id="laptop") as client:
        # --- the same client code, three wire protocols underneath ---------
        payload = os.urandom(150_000)
        report = client.put("cross-vendor.bin", payload)
        print(f"stored {report.node.size:,} bytes across three vendor APIs "
              f"({report.new_chunks} chunks x 3 shares)")
        assert client.get("cross-vendor.bin").data == payload
        print("read back byte-for-byte\n")

        # --- what actually went over each wire ------------------------------
        for server, label in [
            (dropbox_srv, "dropbox (JSON, path-keyed, OAuth2 bearer)"),
            (drive_srv, "gdrive  (JSON, file-id-keyed, OAuth2 bearer)"),
            (s3_srv, "s3      (XML, per-request HMAC signature)"),
        ]:
            calls = {}
            for request in server.request_log:
                calls[request.path] = calls.get(request.path, 0) + 1
            summary = ", ".join(
                f"{path} x{count}" for path, count in sorted(calls.items())
            )
            print(f"{label}:")
            print(f"  {len(server.object_names())} objects, "
                  f"{server.stored_bytes():,} bytes")
            print(f"  wire calls: {summary}")

        # --- the Section 3.1 quirk, observable ------------------------------
        # CYRUS's content-derived share names mean re-uploading a share is
        # always byte-identical, so Drive's duplicate-on-upload semantics
        # and Dropbox's overwrite semantics become indistinguishable
        name = client.tree.latest("cross-vendor.bin").shares[0]
        print(f"\nvendor quirk check: share names are content hashes "
              f"(e.g. {name.chunk_id[:12]}...), so overwrite-vs-duplicate "
              f"vendor semantics cannot corrupt data")


if __name__ == "__main__":
    main()
