#!/usr/bin/env python3
"""Reliability: planning n from a failure budget, surviving outages,
and lazy share migration after a provider disappears.

Walks the paper's Section 4.2 and 5.5 machinery end to end on the
network simulator: an epsilon-driven share count, a mid-day provider
outage, a permanent removal, and the Figure 9 lazy re-homing of shares.

Run:  python examples/failure_recovery.py
"""

import random

from repro import CSPStatus, CyrusConfig
from repro.bench import build_environment
from repro.csp import AvailabilitySchedule
from repro.netsim import Link
from repro.reliability import chunk_failure_probability


def main() -> None:
    # --- plan n from a failure budget (Eq. 1) -----------------------------
    config = CyrusConfig(
        key="resilient-key", t=2,
        n=None, epsilon=1e-7,           # "lose a chunk once in 10^7"
        csp_failure_prob=2e-3,          # worst observed CSP (~18 h/yr)
        chunk_min=32 * 1024, chunk_avg=128 * 1024, chunk_max=1024 * 1024,
    )
    n = config.plan_n(available_csps=6)
    print(f"failure budget 1e-7 with p=2e-3 per CSP -> n = {n} shares "
          f"(chunk-loss probability "
          f"{chunk_failure_probability(config.t, n, 2e-3):.2e})")

    # --- build a six-provider simulated cloud; one has a scheduled outage --
    links = {f"cloud-{i}": Link.symmetric(f"cloud-{i}", (10 + 2 * i) * 1e6,
                                          rtt_s=0.02) for i in range(6)}
    env = build_environment(
        links,
        availability={"cloud-2": AvailabilitySchedule([(100.0, 5000.0)])},
    )
    client = env.new_client(config, client_id="ops-laptop")

    payload = random.Random(0).randbytes(3_000_000)
    report = client.put("backups/db-snapshot.bin", payload)
    print(f"\nstored snapshot: {report.new_chunks} chunks x {n} shares in "
          f"{report.duration:.2f}s simulated")

    # --- outage: cloud-2 goes down; reads keep working ---------------------
    env.clock.advance_to(200.0)
    got = client.get("backups/db-snapshot.bin")
    assert got.data == payload
    print(f"during cloud-2's outage: download still OK "
          f"({got.duration:.2f}s, rerouted around the outage)")

    # --- permanent removal + lazy migration (Figure 9) ---------------------
    client.remove_csp("cloud-5")
    print("\ncloud-5 removed from the federation")
    got = client.get("backups/db-snapshot.bin")
    assert got.data == payload
    print(f"next download migrated {len(got.migrations)} stranded shares "
          f"to active providers:")
    for migration in got.migrations[:5]:
        print(f"  chunk {migration.chunk_id[:8]} share #{migration.index}: "
              f"{migration.old_csp} -> {migration.new_csp}")

    # reliability is restored: every chunk has n live shares again
    for record in got.node.chunks:
        location = client.chunk_table.get(record.chunk_id)
        live = [
            c for c in location.csps()
            if client.cloud.status_of(c) is CSPStatus.ACTIVE
        ]
        assert len(live) >= record.n
    print("every chunk is back to full redundancy on live providers")

    # --- the estimator that feeds p (Section 4.2) --------------------------
    from repro.reliability import FailureEstimator

    estimator = FailureEstimator(outage_threshold_s=24 * 3600)
    for day in range(300):
        estimator.record_success(day * 86400.0)
    estimator.record_failure(300 * 86400.0)
    estimator.record_failure(302 * 86400.0)  # > 1 day: one CSP failure
    print(f"\nobserved failure probability estimate: "
          f"{estimator.probability:.4f} "
          f"({estimator.failure_events} qualifying outage)")


if __name__ == "__main__":
    main()
