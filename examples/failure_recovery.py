#!/usr/bin/env python3
"""Reliability: planning n from a failure budget, surviving outages,
and lazy share migration after a provider disappears.

Walks the paper's Section 4.2 and 5.5 machinery end to end on the
network simulator: an epsilon-driven share count, a mid-day provider
outage, a permanent removal, and the Figure 9 lazy re-homing of shares.

Run:  python examples/failure_recovery.py
"""

import random

from repro import CSPStatus, CyrusConfig
from repro.bench import build_environment
from repro.csp import AvailabilitySchedule
from repro.netsim import Link
from repro.reliability import chunk_failure_probability


def main() -> None:
    # --- plan n from a failure budget (Eq. 1) -----------------------------
    config = CyrusConfig(
        key="resilient-key", t=2,
        n=None, epsilon=1e-7,           # "lose a chunk once in 10^7"
        csp_failure_prob=2e-3,          # worst observed CSP (~18 h/yr)
        chunk_min=32 * 1024, chunk_avg=128 * 1024, chunk_max=1024 * 1024,
    )
    n = config.plan_n(available_csps=6)
    print(f"failure budget 1e-7 with p=2e-3 per CSP -> n = {n} shares "
          f"(chunk-loss probability "
          f"{chunk_failure_probability(config.t, n, 2e-3):.2e})")

    # --- build a six-provider simulated cloud; one has a scheduled outage --
    links = {f"cloud-{i}": Link.symmetric(f"cloud-{i}", (10 + 2 * i) * 1e6,
                                          rtt_s=0.02) for i in range(6)}
    env = build_environment(
        links,
        availability={"cloud-2": AvailabilitySchedule([(100.0, 5000.0)])},
    )
    client = env.new_client(config, client_id="ops-laptop")

    payload = random.Random(0).randbytes(3_000_000)
    report = client.put("backups/db-snapshot.bin", payload)
    print(f"\nstored snapshot: {report.new_chunks} chunks x {n} shares in "
          f"{report.duration:.2f}s simulated")

    # --- outage: cloud-2 goes down; reads keep working ---------------------
    env.clock.advance_to(200.0)
    got = client.get("backups/db-snapshot.bin")
    assert got.data == payload
    print(f"during cloud-2's outage: download still OK "
          f"({got.duration:.2f}s, rerouted around the outage)")

    # --- permanent removal + lazy migration (Figure 9) ---------------------
    client.remove_csp("cloud-5")
    print("\ncloud-5 removed from the federation")
    got = client.get("backups/db-snapshot.bin")
    assert got.data == payload
    print(f"next download migrated {len(got.migrations)} stranded shares "
          f"to active providers:")
    for migration in got.migrations[:5]:
        print(f"  chunk {migration.chunk_id[:8]} share #{migration.index}: "
              f"{migration.old_csp} -> {migration.new_csp}")

    # reliability is restored: every chunk has n live shares again
    for record in got.node.chunks:
        location = client.chunk_table.get(record.chunk_id)
        live = [
            c for c in location.csps()
            if client.cloud.status_of(c) is CSPStatus.ACTIVE
        ]
        assert len(live) >= record.n
    print("every chunk is back to full redundancy on live providers")

    # --- the estimator that feeds p (Section 4.2) --------------------------
    from repro.reliability import FailureEstimator

    estimator = FailureEstimator(outage_threshold_s=24 * 3600)
    for day in range(300):
        estimator.record_success(day * 86400.0)
    estimator.record_failure(300 * 86400.0)
    estimator.record_failure(302 * 86400.0)  # > 1 day: one CSP failure
    print(f"\nobserved failure probability estimate: "
          f"{estimator.probability:.4f} "
          f"({estimator.failure_events} qualifying outage)")

    # --- seeded chaos: fault injection + the resilient layer ---------------
    chaos_demo()


def chaos_demo() -> None:
    """Drive the client through a scripted fault schedule.

    A :class:`FaultPlan` injects transient errors everywhere, an
    op-windowed outage and bit-flip share corruption on one provider,
    and latency spikes — all derived from one seed, so reruns replay
    the exact same schedule.  The retry loop, circuit breakers and the
    Section 5.1 repair path ride it out with zero data loss.
    """
    from repro.core.client import CyrusClient
    from repro.core.transfer import DirectEngine
    from repro.csp.memory import InMemoryCSP
    from repro.faults import FaultKind, FaultPlan, FaultyProvider
    from repro.util.clock import SimClock

    clock = SimClock()
    plan = FaultPlan.chaos(
        seed=2026,
        transient_rate=0.08,            # blips on every provider
        corrupt_csp_ids=("chaos-1",),   # one provider flips share bits
        corrupt_rate=0.5,
        outage_csp_id="chaos-1",        # ... and goes dark for a while
        outage_window_ops=(40, 90),
        latency_rate=0.05, latency_s=0.1,
    )
    providers = [
        FaultyProvider(InMemoryCSP(f"chaos-{i}"), plan, clock=clock)
        for i in range(4)
    ]
    config = CyrusConfig(key="chaos-key", t=2, n=3,
                         chunk_min=128, chunk_avg=512, chunk_max=4096)
    engine = DirectEngine({p.csp_id: p for p in providers}, clock=clock)
    client = CyrusClient.create(providers, config, client_id="ops-laptop",
                                engine=engine)

    rng = random.Random(7)
    print("\nchaos run: 12 put/get cycles under a seeded fault plan")
    for cycle in range(12):
        client.probe_failed_csps()      # Section 5.5 periodic re-check
        data = rng.randbytes(600 + 97 * cycle)
        client.put(f"file-{cycle}.bin", data)
        assert client.get(f"file-{cycle}.bin").data == data

    injected = {}
    for p in providers:
        for kind, count in p.injected_faults.items():
            injected[kind] = injected.get(kind, 0) + count
    print("faults injected: " + ", ".join(
        f"{kind.name.lower()} x{injected[kind]}"
        for kind in FaultKind if injected.get(kind)))
    failures = sum(1 for e in client.health_events if e.kind == "failure")
    opens = sum(1 for e in client.health_events if e.kind == "breaker_open")
    print(f"health events: {failures} failures recorded, "
          f"{opens} circuit-breaker trips")
    for csp_id, health in sorted(client.health.snapshot().items()):
        print(f"  {csp_id}: state={health.state.name.lower()} "
              f"ok={health.successes} fail={health.failures}")
    print("all 12 files read back byte-identical despite the chaos")


if __name__ == "__main__":
    main()
