"""Figure 3 — clustering of Table 2's CSPs by shared infrastructure.

Synthesises routes for all twenty CSPs (the five Amazon-hosted ones
share backbone hops), builds the spanning tree rooted at the client,
cuts it, and checks that exactly the asterisked CSPs co-cluster.
"""

from repro.csp.catalog import TABLE2
from repro.topology import cluster_csps, render_tree, route_tree, synthesize_routes

from benchmarks.conftest import print_table

AMAZON = {s.name for s in TABLE2 if s.amazon_platform}


def run_clustering():
    platforms = {name: "amazon" for name in AMAZON}
    routes = synthesize_routes(
        [s.name for s in TABLE2], platforms, seed=3, api_indirection=AMAZON
    )
    return routes, cluster_csps(routes)


def test_figure3_tree_and_clusters(benchmark):
    routes, clusters = benchmark.pedantic(run_clustering, rounds=1,
                                          iterations=1)
    tree = route_tree(routes)
    print_table("Figure 3: route tree (root = client, leaves = CSPs)",
                render_tree(tree))
    multi = [c for c in clusters if len(c) > 1]
    print(f"\nclusters found: {len(clusters)} "
          f"(multi-member: {[sorted(c) for c in multi]})")

    # the paper's finding: five CSPs deployed on Amazon, all others
    # on their own platforms
    assert multi == [AMAZON]
    assert len(clusters) == 16
    benchmark.extra_info["amazon_cluster_size"] = len(multi[0])


def test_figure3_cluster_placement_consequence(benchmark):
    """Shares of one chunk avoid co-clustered CSPs (Section 4.1)."""
    from repro.core.cloud import CyrusCloud
    from repro.csp import InMemoryCSP

    def place():
        _, clusters = run_clustering()
        cloud = CyrusCloud(
            [InMemoryCSP(s.name) for s in TABLE2], clusters=clusters
        )
        return [cloud.place_chunk(f"chunk-{i}", 4) for i in range(50)]

    placements = benchmark.pedantic(place, rounds=1, iterations=1)
    for chosen in placements:
        assert len(set(chosen) & AMAZON) <= 1, chosen
