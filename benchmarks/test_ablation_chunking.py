"""Ablation — content-defined vs fixed-size chunking (Section 5.1).

"When a file is modified, content-dependent chunking only requires
chunks to be modified if their contents are changed, unlike fixed-size
chunking, which changes all chunks."  The ablation measures the bytes
that must be re-uploaded after realistic edits under both chunkers.
"""

from repro.bench.reporting import fmt_mb, render_table
from repro.chunking import ContentDefinedChunker, FixedSizeChunker
from repro.workloads import edited_copy, random_bytes

from benchmarks.conftest import print_table

FILE_BYTES = 2 * 1024 * 1024
EDITS = 5


def reupload_bytes(chunker, original: bytes, edited: bytes) -> int:
    before = {c.id for c in chunker.chunk_bytes(original)}
    return sum(
        c.size for c in chunker.chunk_bytes(edited) if c.id not in before
    )


def run_comparison():
    cdc = ContentDefinedChunker(min_size=16 * 1024, avg_size=64 * 1024,
                                max_size=256 * 1024)
    fixed = FixedSizeChunker(chunk_size=64 * 1024)
    totals = {"cdc": 0, "fixed": 0, "edited": 0}
    for trial in range(4):
        original = random_bytes(FILE_BYTES, seed=100 + trial)
        edited = edited_copy(original, seed=200 + trial, edits=EDITS,
                             max_edit=8 * 1024)
        totals["cdc"] += reupload_bytes(cdc, original, edited)
        totals["fixed"] += reupload_bytes(fixed, original, edited)
        totals["edited"] += len(edited)
    return totals


def test_ablation_chunking_dedup(benchmark):
    totals = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    print_table(
        f"Ablation: bytes re-uploaded after {EDITS} local edits "
        f"(4 x {fmt_mb(FILE_BYTES)} files)",
        render_table(
            ["chunker", "bytes re-uploaded", "fraction of file"],
            [
                ["content-defined", fmt_mb(totals["cdc"]),
                 f"{totals['cdc'] / totals['edited']:.1%}"],
                ["fixed-size", fmt_mb(totals["fixed"]),
                 f"{totals['fixed'] / totals['edited']:.1%}"],
            ],
        ),
    )
    # CDC re-uploads a small fraction; fixed-size re-uploads most of the
    # file whenever an edit shifts offsets (insertions/deletions)
    assert totals["cdc"] < 0.5 * totals["fixed"]
    assert totals["cdc"] < 0.45 * totals["edited"]
    assert totals["fixed"] > 0.5 * totals["edited"]
