"""Section 8 — promoting market competition (the paper's economic claim).

"Assuming comparable CSP prices, a given user might then purchase
storage at all available CSPs, even-ing out CSP market shares."  The
paper argues CYRUS counteracts vendor lock-in: without it, each user
parks all data at one primary provider; with it, every user's data is
scattered across their accounts by consistent hashing.

This benchmark simulates a population of users, each holding accounts
at a random subset of the Table 2 CSPs with a popularity-skewed choice
of *primary* provider, and compares the storage-market concentration
(Herfindahl-Hirschman index) with and without CYRUS.  Asserted shape:
CYRUS lowers concentration substantially and gives every entrant CSP
non-zero demand.
"""

import random

from repro.bench.reporting import fmt_mb, render_table
from repro.csp.catalog import TABLE2
from repro.hashring import ConsistentHashRing

from benchmarks.conftest import print_table

USERS = 200
FILES_PER_USER = 30
CSPS = [spec.name for spec in TABLE2]


def hhi(shares: dict[str, float]) -> float:
    """Herfindahl-Hirschman index over market shares (0..1]."""
    total = sum(shares.values())
    if total == 0:
        return 0.0
    return sum((v / total) ** 2 for v in shares.values())


def simulate_market(seed=8):
    rng = random.Random(seed)
    # popularity-skewed primary choice: early-market incumbents dominate
    weights = [1.0 / (rank + 1) for rank in range(len(CSPS))]
    stored_without = {name: 0.0 for name in CSPS}
    stored_with = {name: 0.0 for name in CSPS}

    for user in range(USERS):
        account_count = rng.randint(3, 8)
        accounts = rng.sample(CSPS, account_count)
        primary = rng.choices(CSPS, weights=weights)[0]
        if primary not in accounts:
            accounts[0] = primary
        ring = ConsistentHashRing(replicas=32)
        for name in accounts:
            ring.add(name)
        t, n = 2, 3
        for i in range(FILES_PER_USER):
            size = rng.randint(100_000, 5_000_000)
            # vendor lock-in world: everything at the primary
            stored_without[primary] += size
            # CYRUS world: n shares of size/t via consistent hashing
            for csp in ring.successors(f"u{user}-f{i}", min(n, account_count)):
                stored_with[csp] += size / t
    return stored_without, stored_with


def test_section8_market_concentration(benchmark):
    without, with_cyrus = benchmark.pedantic(simulate_market, rounds=1,
                                             iterations=1)
    hhi_without = hhi(without)
    hhi_with = hhi(with_cyrus)
    top5 = sorted(without, key=without.get, reverse=True)[:5]
    rows = [
        [name, fmt_mb(without[name]), fmt_mb(with_cyrus[name])]
        for name in top5
    ]
    zero_without = sum(1 for v in without.values() if v == 0)
    zero_with = sum(1 for v in with_cyrus.values() if v == 0)
    print_table(
        "Section 8: storage demand, top-5 incumbents "
        f"(HHI without CYRUS: {hhi_without:.3f}, with: {hhi_with:.3f})",
        render_table(["CSP", "stored (lock-in world)", "stored (CYRUS world)"],
                     rows),
    )
    print(f"CSPs with zero demand: {zero_without} without CYRUS, "
          f"{zero_with} with CYRUS")

    # the paper's qualitative claims
    assert hhi_with < hhi_without * 0.6, "CYRUS must even out market shares"
    assert zero_with == 0, "every entrant CSP gains users under CYRUS"
    # total purchased storage grows by ~n/t (Section 8's revenue point)
    growth = sum(with_cyrus.values()) / sum(without.values())
    assert 1.2 < growth < 1.8  # n/t = 1.5 with account-count truncation
    benchmark.extra_info["hhi_without"] = round(hhi_without, 4)
    benchmark.extra_info["hhi_with"] = round(hhi_with, 4)
