"""Table 1 — feature comparison with similar cloud-integration systems.

Prior systems' rows are recorded from the paper; CYRUS's row is computed
by probing this implementation, so the benchmark fails if any claimed
capability regresses.
"""

from repro.bench.features import FEATURES, cyrus_feature_row, full_matrix
from repro.bench.reporting import render_table

from benchmarks.conftest import print_table


def test_table1_feature_matrix(benchmark):
    matrix = benchmark.pedantic(full_matrix, rounds=1, iterations=1)

    rows = []
    for system in ("Attasena", "DepSky", "InterCloud RAIDer", "PiCsMu", "CYRUS"):
        rows.append(
            [system] + ["Yes" if matrix[system][f] else "No" for f in FEATURES]
        )
    print_table("Table 1: feature comparison", render_table(
        ["System"] + list(FEATURES), rows
    ))

    # the paper's claim: CYRUS has every feature; no prior system does
    assert all(matrix["CYRUS"].values())
    for system, row in matrix.items():
        if system != "CYRUS":
            assert not all(row.values()), f"{system} should lack a feature"
    benchmark.extra_info["cyrus_features"] = sum(matrix["CYRUS"].values())


def test_cyrus_row_is_probed_not_asserted(benchmark):
    row = benchmark.pedantic(cyrus_feature_row, rounds=1, iterations=1)
    assert set(row) == set(FEATURES)
