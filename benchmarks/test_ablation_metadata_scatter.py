"""Ablation — scattered metadata vs a central metadata server.

Section 3.1: "The easiest way to share this metadata is to maintain a
central metadata server, but this solution makes CYRUS dependent on a
single server, introducing a single point of failure ... Our solution
is to scatter the metadata across all of the CSPs."  This ablation
quantifies that argument two ways:

* analytically + Monte Carlo: the probability that metadata is
  unreadable, for a central server vs (t, m) scattering, at realistic
  per-provider failure rates;
* operationally: with any one provider down, scattered metadata keeps
  every CYRUS operation working, end to end.
"""

import random

from repro.bench.reporting import render_table
from repro.core.client import CyrusClient
from repro.core.config import CyrusConfig
from repro.csp import InMemoryCSP
from repro.reliability import chunk_failure_probability

from benchmarks.conftest import print_table

P_FAIL = 2e-3  # worst Table-observed provider (~18 h/yr downtime)
TRIALS = 400_000


def analytic_unavailability(t: int, m: int, p: float) -> float:
    """P(fewer than t metadata shares reachable)."""
    return chunk_failure_probability(t, m, p)


def monte_carlo_unavailability(t: int, m: int, p: float, seed=31) -> float:
    rng = random.Random(seed)
    bad = 0
    for _ in range(TRIALS):
        up = sum(1 for _ in range(m) if rng.random() >= p)
        if up < t:
            bad += 1
    return bad / TRIALS


def test_ablation_metadata_scattering(benchmark):
    def run():
        rows = []
        results = {}
        for label, t, m in [
            ("central server", 1, 1),
            ("replicated server pair", 1, 2),
            ("CYRUS scatter (2, 4)", 2, 4),
            ("CYRUS scatter (2, 8)", 2, 8),
        ]:
            analytic = analytic_unavailability(t, m, P_FAIL)
            measured = monte_carlo_unavailability(t, m, P_FAIL)
            results[label] = (analytic, measured)
            rows.append([label, f"{analytic:.2e}", f"{measured:.2e}"])
        return rows, results

    rows, results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        f"Ablation: metadata unavailability (p = {P_FAIL} per provider)",
        render_table(["scheme", "analytic", f"measured ({TRIALS:,} trials)"],
                     rows),
    )
    central = results["central server"][0]
    scattered = results["CYRUS scatter (2, 4)"][0]
    # scattering buys orders of magnitude: with p=2e-3, a central server
    # fails at 2e-3 while (2,4) fails around C(4,3) p^3 ~ 3e-8
    assert scattered < central / 1000
    # more slots only help (metadata goes to ALL CSPs, footnote 3)
    assert results["CYRUS scatter (2, 8)"][0] < scattered
    # Monte Carlo agrees with the closed form where it has resolution
    # (central server: ~800 expected failure events over the trials)
    measured_central = results["central server"][1]
    assert abs(measured_central - central) < 0.3 * central


def test_ablation_operational_with_one_provider_down(benchmark):
    """Every Table 3 operation survives any single provider outage."""

    def run():
        outcomes = []
        for victim in range(4):
            csps = [InMemoryCSP(f"p{i}") for i in range(4)]
            config = CyrusConfig(key="k", t=2, n=3, chunk_min=256,
                                 chunk_avg=1024, chunk_max=8192)
            client = CyrusClient.create(csps, config, client_id="ops")
            client.put("pre-outage.bin", b"written before " * 100)
            client.cloud.mark_failed(f"p{victim}")
            # all core operations with one provider dark:
            client.put("during.bin", b"written during " * 120)
            ok_read = client.get("pre-outage.bin").data == (
                b"written before " * 100
            )
            listing = {e.name for e in client.list_files()}
            client.delete("during.bin")
            fresh = CyrusClient.create(csps, config, client_id="fresh")
            fresh.cloud.mark_failed(f"p{victim}")
            fresh.recover()
            ok_recover = fresh.get("pre-outage.bin",
                                   sync_first=False).data == (
                b"written before " * 100
            )
            outcomes.append(
                ok_read and ok_recover
                and listing == {"pre-outage.bin", "during.bin"}
            )
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(outcomes), outcomes
    print("\nall Table 3 operations verified with each of the four "
          "providers down in turn")
