"""Table 4 — the testbed evaluation dataset.

Regenerates the dataset profile and checks it matches the paper's
per-extension file counts and byte totals exactly at scale 1.0 (sizes
only; contents are synthetic), and proportionally at bench scale.
"""

from repro.bench.reporting import render_table
from repro.workloads import TABLE4_PROFILE, generate_dataset
from repro.workloads.dataset import TABLE4_TOTAL_BYTES, TABLE4_TOTAL_FILES

from benchmarks.conftest import BENCH_SCALE, print_table


def test_table4_full_scale_profile(benchmark):
    dataset = benchmark.pedantic(
        lambda: generate_dataset(scale=1.0), rounds=1, iterations=1
    )
    by_ext = dataset.by_extension()
    rows = []
    for profile in TABLE4_PROFILE:
        files = by_ext[profile.extension]
        total = sum(f.size for f in files)
        rows.append(
            [profile.extension, len(files), f"{total:,}",
             f"{total // len(files):,}"]
        )
    rows.append(["Total", len(dataset.files), f"{dataset.total_bytes:,}",
                 f"{dataset.total_bytes // len(dataset.files):,}"])
    print_table(
        "Table 4: testbed evaluation dataset (regenerated)",
        render_table(["Extension", "# of files", "Total bytes",
                      "Avg. size (bytes)"], rows),
    )
    assert len(dataset.files) == TABLE4_TOTAL_FILES
    assert dataset.total_bytes == TABLE4_TOTAL_BYTES
    for profile in TABLE4_PROFILE:
        files = by_ext[profile.extension]
        assert len(files) == profile.files
        assert sum(f.size for f in files) == profile.total_bytes
    benchmark.extra_info["total_bytes"] = dataset.total_bytes


def test_table4_bench_scale_consistency(benchmark):
    dataset = benchmark.pedantic(
        lambda: generate_dataset(scale=BENCH_SCALE), rounds=1, iterations=1
    )
    assert len(dataset.files) == TABLE4_TOTAL_FILES
    assert abs(
        dataset.total_bytes - TABLE4_TOTAL_BYTES * BENCH_SCALE
    ) < 0.02 * TABLE4_TOTAL_BYTES * BENCH_SCALE + len(dataset.files)
