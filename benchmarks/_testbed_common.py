"""Shared machinery for the testbed dataset experiments (Figures 14, 15).

Builds the paper's 4-fast/3-slow testbed, uploads the (scaled) Table 4
dataset under a given (t, n), and measures per-file download completion
times under a given download selector.

Timings come from the environment's shared observability layer: each
``put``/``get`` produces an ``upload``/``download`` span on the shared
SimClock-driven tracer, and the :class:`TransferTimeline` built from the
same tracer gives the per-CSP views (bytes, busy time) that earlier
versions of these benchmarks re-derived by hand from reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench import build_paper_testbed
from repro.core.config import CyrusConfig
from repro.obs import TransferTimeline
from repro.workloads import generate_dataset

from benchmarks.conftest import BENCH_CHUNKS, BENCH_SCALE


@dataclass
class ExperimentResult:
    """Per-file timings for one (config, selector) run."""

    t: int
    n: int
    selector_name: str
    upload_durations: list[float]
    download_durations: list[float]
    file_sizes: list[int]
    #: Per-CSP share-transfer bars for the whole run (Figure 14/17 view)
    timeline: TransferTimeline = field(default_factory=TransferTimeline)

    @property
    def mean_download(self) -> float:
        return sum(self.download_durations) / len(self.download_durations)

    @property
    def cumulative_upload(self) -> float:
        return sum(self.upload_durations)

    @property
    def cumulative_download(self) -> float:
        return sum(self.download_durations)

    def download_throughputs(self) -> list[float]:
        return [
            size / duration
            for size, duration in zip(self.file_sizes, self.download_durations)
            if duration > 0
        ]

    def per_csp_bytes(self, kind: str | None = None) -> dict[str, int]:
        """Successful transfer bytes per provider, from the timeline."""
        return self.timeline.per_csp_bytes(kind=kind)


def dataset_files(max_files: int | None = None):
    dataset = generate_dataset(scale=BENCH_SCALE, seed=1404)
    files = list(dataset.files)
    if max_files is not None:
        files = files[:max_files]
    return [(f.name, f.content()) for f in files]


def run_experiment(
    t: int,
    n: int,
    selector_factory,
    selector_name: str,
    files: list[tuple[str, bytes]],
    key: str = "bench-key",
) -> ExperimentResult:
    """Upload all files, then download them all with the given selector."""
    env = build_paper_testbed()
    config = CyrusConfig(key=key, t=t, n=n, **BENCH_CHUNKS)
    writer = env.new_client(config, client_id="writer")
    for name, content in files:
        writer.put(name, content, sync_first=False)
    reader = env.new_client(
        config, client_id="reader", selector=selector_factory()
    )
    reader.recover()
    for name, content in files:
        report = reader.get(name, sync_first=False)
        assert report.data == content, f"corrupt roundtrip for {name}"
    tracer = env.obs.tracer
    return ExperimentResult(
        t=t,
        n=n,
        selector_name=selector_name,
        upload_durations=[s.duration for s in tracer.find("upload")],
        download_durations=[s.duration for s in tracer.find("download")],
        file_sizes=[len(content) for _, content in files],
        timeline=TransferTimeline.from_tracer(tracer),
    )
