"""Figure 12 — empirical overhead of chunk encoding and decoding vs (t, n).

The paper measures a 100 MB chunk; we sweep the same (t, n) ranges on a
scaled chunk (wall-clock measured — this benchmark is about *our*
codec's real speed) and assert the paper's shapes: decoding slows with
t, encoding slows with n, and throughput stays high enough that coding
is never the transfer bottleneck at the paper's operating points.
"""

import os
import time

from repro.bench.reporting import render_table
from repro.erasure import RSCodec

from benchmarks.conftest import print_table

#: Scaled from the paper's 100 MB (wall-time benchmark, keep it snappy).
CHUNK_BYTES = 8 * 1024 * 1024

_PAYLOAD = os.urandom(CHUNK_BYTES)


def encode_throughput(t: int, n: int) -> float:
    codec = RSCodec(t, n)
    start = time.perf_counter()
    codec.encode(_PAYLOAD)
    return CHUNK_BYTES / (time.perf_counter() - start) / 1e6


def decode_throughput(t: int, n: int) -> float:
    codec = RSCodec(t, n)
    shares = codec.encode(_PAYLOAD)
    start = time.perf_counter()
    codec.decode(shares[:t])
    return CHUNK_BYTES / (time.perf_counter() - start) / 1e6


def test_figure12_decode_throughput_vs_t(benchmark):
    sweep = [(t, t + 1) for t in (2, 3, 5, 8, 10)]
    results = {}
    for t, n in sweep:
        results[(t, n)] = decode_throughput(t, n)
    benchmark.pedantic(
        lambda: RSCodec(3, 5).decode(RSCodec(3, 5).encode(_PAYLOAD)[:3]),
        rounds=3, iterations=1,
    )
    print_table(
        "Figure 12 (decode): throughput vs t",
        render_table(
            ["t", "n", "decode MB/s"],
            [[t, n, f"{mbs:.0f}"] for (t, n), mbs in results.items()],
        ),
    )
    # shape: larger t decodes slower (end points; middle may be noisy)
    assert results[(10, 11)] < results[(2, 3)]
    # operating range (2,3)..(3,5): still fast enough to keep transfer
    # the bottleneck (paper: >= 300 MB/s on their hardware; we only
    # require well above the testbed's 15 MB/s links)
    assert results[(2, 3)] > 60
    assert results[(3, 4)] > 60
    for key, value in results.items():
        benchmark.extra_info[f"decode_{key}"] = round(value, 1)


def test_figure12_encode_throughput_vs_n(benchmark):
    sweep = [(2, n) for n in (3, 5, 7, 9, 11)]
    results = {}
    for t, n in sweep:
        results[(t, n)] = encode_throughput(t, n)
    benchmark.pedantic(lambda: RSCodec(2, 3).encode(_PAYLOAD),
                       rounds=3, iterations=1)
    print_table(
        "Figure 12 (encode): throughput vs n",
        render_table(
            ["t", "n", "encode MB/s"],
            [[t, n, f"{mbs:.0f}"] for (t, n), mbs in results.items()],
        ),
    )
    assert results[(2, 11)] < results[(2, 3)]
    assert results[(2, 3)] > 60
    for key, value in results.items():
        benchmark.extra_info[f"encode_{key}"] = round(value, 1)
