"""Figure 18 — shares uploaded to each CSP over the two-day run.

Paper shapes: "DepSky stores more shares at consistently faster CSPs
... while CYRUS distributes shares evenly.  Similarly, CYRUS spreads
share downloads more evenly across CSPs."
"""

from repro.bench.reporting import render_table

from benchmarks._realworld_common import run_two_days
from benchmarks.conftest import print_table


def skew(counts: dict[str, int]) -> float:
    values = list(counts.values())
    return max(values) / max(1, min(values))


def test_figure18_upload_share_balance(benchmark):
    run = benchmark.pedantic(run_two_days, rounds=1, iterations=1)
    csps = sorted(run.cyrus_shares)
    print_table(
        "Figure 18: shares stored per CSP over two days",
        render_table(
            ["System"] + csps,
            [
                ["CYRUS"] + [run.cyrus_shares[c] for c in csps],
                ["DepSky"] + [run.depsky_shares[c] for c in csps],
            ],
        ),
    )
    # CYRUS: consistent hashing keeps storage near-uniform
    assert skew(run.cyrus_shares) <= 2.5
    # DepSky: the slowest uploader is starved (cancelled every time)
    assert skew(run.depsky_shares) >= 3.0
    assert min(run.depsky_shares.values()) < min(run.cyrus_shares.values())
    benchmark.extra_info["cyrus_skew"] = round(skew(run.cyrus_shares), 2)
    benchmark.extra_info["depsky_skew"] = round(skew(run.depsky_shares), 2)


def test_figure18_download_balance(benchmark):
    run = benchmark.pedantic(run_two_days, rounds=1, iterations=1)
    csps = sorted(run.cyrus_downloads)
    print_table(
        "Figure 18 (companion): share downloads per CSP",
        render_table(
            ["System"] + csps,
            [
                ["CYRUS"] + [run.cyrus_downloads[c] for c in csps],
                ["DepSky"] + [run.depsky_downloads[c] for c in csps],
            ],
        ),
    )
    # CYRUS spreads downloads across more providers than greedy DepSky
    cyrus_used = sum(1 for v in run.cyrus_downloads.values() if v > 0)
    depsky_used = sum(1 for v in run.depsky_downloads.values() if v > 0)
    assert cyrus_used >= depsky_used
    assert skew(run.cyrus_downloads) <= skew(run.depsky_downloads) * 1.2
