"""Ablation — optimal bandwidth allocation vs equal split (Section 4.3).

Algorithm 1 alternates CSP selection with the bandwidth sub-problem.
The closed-form allocation gives each CSP bandwidth proportional to its
load; the ablation compares the resulting bottleneck time against the
naive equal split of the client's capacity, for the same share
assignment.
"""

import random

from repro.bench.reporting import render_table
from repro.selection import (
    ChunkDownload,
    CyrusSelector,
    DownloadProblem,
    optimal_bandwidth_allocation,
)

from benchmarks.conftest import print_table

CAPS = {f"fast{i}": 15e6 for i in range(4)} | {f"slow{i}": 2e6 for i in range(3)}


def equal_split_time(loads, link_caps, client_cap) -> float:
    used = [c for c, load in loads.items() if load > 0]
    share = client_cap / max(1, len(used))
    return max(
        loads[c] / min(share, link_caps[c]) for c in used
    )


def run_comparison():
    rng = random.Random(4)
    ids = sorted(CAPS)
    problem = DownloadProblem(
        chunks=tuple(
            ChunkDownload(f"c{i}", rng.randint(1, 8) * 500_000,
                          tuple(rng.sample(ids, 4)))
            for i in range(30)
        ),
        t=2, link_caps=CAPS, client_cap=25e6,
    )
    plan = CyrusSelector(resolve_every=8).select(problem)
    loads = plan.loads(problem)
    optimal_y, _ = optimal_bandwidth_allocation(loads, CAPS, 25e6)
    equal_y = equal_split_time(loads, CAPS, 25e6)
    return optimal_y, equal_y


def test_ablation_bandwidth_allocation(benchmark):
    optimal_y, equal_y = benchmark.pedantic(run_comparison, rounds=1,
                                            iterations=1)
    print_table(
        "Ablation: bandwidth allocation for a fixed share assignment",
        render_table(
            ["allocation", "bottleneck time"],
            [
                ["optimal (load-proportional)", f"{optimal_y:.3f}s"],
                ["equal split", f"{equal_y:.3f}s"],
            ],
        ),
    )
    assert optimal_y <= equal_y
    # with heterogeneous loads the equal split strands capacity on
    # lightly-loaded CSPs; expect a real gap, not a tie
    assert equal_y > optimal_y * 1.05
