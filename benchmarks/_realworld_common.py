"""Shared two-day real-world run for Figures 17 and 18.

Every hour for two simulated days, a 1 MB file is uploaded and then
downloaded through CYRUS and through DepSky over the four prototype
CSPs with diurnally varying rates.  Figure 17 reads the completion-time
distributions; Figure 18 reads the per-CSP share-placement counts.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field

from repro.bench import build_environment
from repro.bench.realworld import realworld_links
from repro.core.config import CyrusConfig
from repro.depsky import DepSkyClient
from repro.workloads import random_bytes
from repro.workloads.trial import TRIAL_CSPS

FILE_BYTES = 1 * 1024 * 1024
HOURS = 48


@dataclass
class TwoDayRun:
    cyrus_up: list[float] = field(default_factory=list)
    cyrus_down: list[float] = field(default_factory=list)
    depsky_up: list[float] = field(default_factory=list)
    depsky_down: list[float] = field(default_factory=list)
    cyrus_shares: dict[str, int] = field(default_factory=dict)
    depsky_shares: dict[str, int] = field(default_factory=dict)
    cyrus_downloads: dict[str, int] = field(default_factory=dict)
    depsky_downloads: dict[str, int] = field(default_factory=dict)


@functools.lru_cache(maxsize=1)
def run_two_days() -> TwoDayRun:
    out = TwoDayRun()
    config = CyrusConfig(
        key="k", t=2, n=3,
        chunk_min=FILE_BYTES, chunk_avg=1 << 21, chunk_max=1 << 21,
    )

    cyrus_env = build_environment(
        realworld_links(diurnal_amplitude=0.35),
        client_up=100e6 / 8, client_down=100e6 / 8,
    )
    cyrus = cyrus_env.new_client(config)

    depsky_env = build_environment(
        realworld_links(diurnal_amplitude=0.35),
        client_up=100e6 / 8, client_down=100e6 / 8,
    )
    depsky = DepSkyClient(depsky_env.engine, list(TRIAL_CSPS), key="k",
                          t=2, n=3, backoff_range=(1.0, 2.0), seed=17)

    out.cyrus_shares = {c: 0 for c in TRIAL_CSPS}
    out.cyrus_downloads = {c: 0 for c in TRIAL_CSPS}
    out.depsky_downloads = {c: 0 for c in TRIAL_CSPS}

    for hour in range(HOURS):
        t = hour * 3600.0
        cyrus_env.clock.advance_to(max(t, cyrus_env.clock.now()))
        depsky_env.clock.advance_to(max(t, depsky_env.clock.now()))
        data = random_bytes(FILE_BYTES, seed=1700 + hour)
        name = f"hourly-{hour:02d}"

        up = cyrus.put(name, data, sync_first=False)
        for share in up.node.shares:
            out.cyrus_shares[share.csp_id] += 1
        down = cyrus.get(name, sync_first=False)
        assert down.data == data

        dup = depsky.upload(name, data)
        out.depsky_up.append(dup.duration)
        ddown = depsky.download(name)
        assert ddown.data == data
        out.depsky_down.append(ddown.duration)
        for csp in ddown.download_csps:
            out.depsky_downloads[csp] += 1

    # CYRUS timings and per-CSP download counts come from the shared
    # observability layer: one span per put/get on the environment's
    # tracer, and the op counters as the single source of share-fetch
    # truth (these used to be re-counted from reports by hand)
    tracer = cyrus_env.obs.tracer
    out.cyrus_up = [s.duration for s in tracer.find("upload")]
    out.cyrus_down = [s.duration for s in tracer.find("download")]
    snap = cyrus_env.obs.snapshot()
    for csp in TRIAL_CSPS:
        out.cyrus_downloads[csp] = int(snap.counter_value(
            "cyrus_ops_total", csp=csp, kind="GET", outcome="ok"
        ))

    out.depsky_shares = dict(depsky.shares_stored)
    return out
