"""Ablation — consistent hashing vs modulo placement (Section 5.3).

"CYRUS uses consistent hashing to select the n CSPs ... allowing us to
balance the amount of data stored at different CSPs and minimize the
necessary share reallocation when CSPs are added or deleted."  The
ablation measures both properties against the naive alternative
(hash(chunk) mod #CSPs).
"""

import collections

from repro.bench.reporting import render_table
from repro.hashring import ConsistentHashRing
from repro.util.hashing import stable_hash64

from benchmarks.conftest import print_table

KEYS = [f"chunk-{i}" for i in range(4000)]


def modulo_placement(csps: list[str], key: str, n: int) -> list[str]:
    start = stable_hash64(key) % len(csps)
    return [csps[(start + i) % len(csps)] for i in range(n)]


def ring_placement(ring: ConsistentHashRing, key: str, n: int) -> list[str]:
    return ring.successors(key, n)


def run_comparison():
    csps = [f"csp{i}" for i in range(6)]
    ring = ConsistentHashRing()
    for c in csps:
        ring.add(c)

    before_ring = {k: tuple(ring_placement(ring, k, 3)) for k in KEYS}
    before_mod = {k: tuple(modulo_placement(csps, k, 3)) for k in KEYS}

    # membership change: one CSP joins
    csps2 = csps + ["csp6"]
    ring.add("csp6")
    after_ring = {k: tuple(ring_placement(ring, k, 3)) for k in KEYS}
    after_mod = {k: tuple(modulo_placement(csps2, k, 3)) for k in KEYS}

    def moved(before, after):
        total = 0
        for k in KEYS:
            total += len(set(before[k]) - set(after[k]))
        return total / (3 * len(KEYS))

    return {
        "ring_moved": moved(before_ring, after_ring),
        "mod_moved": moved(before_mod, after_mod),
        "ring_balance": _balance(before_ring),
        "mod_balance": _balance(before_mod),
    }


def _balance(placements) -> float:
    counts = collections.Counter()
    for chosen in placements.values():
        counts.update(chosen)
    return min(counts.values()) / max(counts.values())


def test_ablation_consistent_hashing(benchmark):
    stats = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    print_table(
        "Ablation: consistent hashing vs modulo placement (add 7th CSP)",
        render_table(
            ["placement", "share fraction moved", "balance (min/max)"],
            [
                ["consistent hash", f"{stats['ring_moved']:.1%}",
                 f"{stats['ring_balance']:.2f}"],
                ["hash mod N", f"{stats['mod_moved']:.1%}",
                 f"{stats['mod_balance']:.2f}"],
            ],
        ),
    )
    # consistent hashing moves ~1/7 of shares; modulo reshuffles most
    assert stats["ring_moved"] < 0.30
    assert stats["mod_moved"] > 0.55
    assert stats["ring_moved"] < stats["mod_moved"] / 2
    # both balance acceptably before the change
    assert stats["ring_balance"] > 0.5
