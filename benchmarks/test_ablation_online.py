"""Ablation — Algorithm 1's design choices.

Compares (a) the paper's per-chunk re-solve schedule against an
amortised one, and (b) the two fractional-relaxation engines
(alternating LP vs the paper's convexified D-hat program).  The paper's
motivation for the online scheme is that chunk 1's CSPs are fixed — and
its download can start — before later chunks are considered; the
ablation quantifies how little optimality that costs.
"""

import random
import time

from repro.bench.reporting import render_table
from repro.selection import ChunkDownload, CyrusSelector, DownloadProblem

from benchmarks.conftest import print_table

CAPS = {f"fast{i}": 15e6 for i in range(4)} | {f"slow{i}": 2e6 for i in range(3)}


def make_problem(chunks=40, t=2, n=4, seed=0):
    rng = random.Random(seed)
    ids = sorted(CAPS)
    return DownloadProblem(
        chunks=tuple(
            ChunkDownload(
                f"c{i}", rng.randint(1, 8) * 250_000,
                tuple(rng.sample(ids, n)),
            )
            for i in range(chunks)
        ),
        t=t, link_caps=CAPS, client_cap=40e6,
    )


def test_ablation_resolve_schedule(benchmark):
    problems = [make_problem(seed=s) for s in range(3)]
    rows = []
    summary = {}
    for resolve_every, label in [(1, "paper (every chunk)"),
                                 (8, "every 8 chunks"),
                                 (1000, "once up front")]:
        ys, elapsed = [], 0.0
        for problem in problems:
            selector = CyrusSelector(resolve_every=resolve_every)
            start = time.perf_counter()
            plan = selector.select(problem)
            elapsed += time.perf_counter() - start
            ys.append(plan.bottleneck_time)
        mean_y = sum(ys) / len(ys)
        rows.append([label, f"{mean_y:.4f}", f"{elapsed:.2f}s"])
        summary[resolve_every] = (mean_y, elapsed)
    benchmark.pedantic(
        lambda: CyrusSelector(resolve_every=8).select(problems[0]),
        rounds=1, iterations=1,
    )
    print_table(
        "Ablation: relaxation re-solve schedule (40-chunk problems)",
        render_table(["schedule", "mean bottleneck y", "solver wall time"],
                     rows),
    )
    # amortising costs little optimality but much less time
    assert summary[8][0] <= summary[1][0] * 1.25
    assert summary[8][1] < summary[1][1]
    # even solving once is feasible (bounded degradation)
    assert summary[1000][0] <= summary[1][0] * 1.6


def test_ablation_relaxation_engine(benchmark):
    problems = [make_problem(chunks=6, n=3, seed=10 + s) for s in range(3)]
    rows = []
    engine_y = {}
    for engine in ("alternating", "convexified"):
        ys = []
        for problem in problems:
            plan = CyrusSelector(relaxation=engine).select(problem)
            ys.append(plan.bottleneck_time)
        engine_y[engine] = sum(ys) / len(ys)
        rows.append([engine, f"{engine_y[engine]:.4f}"])
    benchmark.pedantic(
        lambda: CyrusSelector(relaxation="convexified").select(problems[0]),
        rounds=1, iterations=1,
    )
    print_table(
        "Ablation: fractional relaxation engine",
        render_table(["engine", "mean bottleneck y"], rows),
    )
    # the two constructions land on near-identical integral plans
    ratio = engine_y["convexified"] / engine_y["alternating"]
    assert 0.8 <= ratio <= 1.25
