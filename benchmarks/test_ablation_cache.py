"""Ablation — the client-side chunk cache.

The prototype keeps local copies of synced files; the library's
:class:`repro.core.cache.ChunkCache` gives repeat and overlapping reads
(several versions sharing chunks, ranged previews) the same benefit.
Measured on the paper testbed: cold read vs warm repeat read vs a read
of an edited version that shares most chunks with a cached one.
"""

from repro.bench import build_paper_testbed
from repro.bench.reporting import fmt_seconds, render_table
from repro.core.cache import ChunkCache
from repro.core.config import CyrusConfig
from repro.workloads import edited_copy, random_bytes

from benchmarks.conftest import BENCH_CHUNKS, print_table

FILE_BYTES = 4 * 1024 * 1024


def run_cache_experiment():
    env = build_paper_testbed()
    cache = ChunkCache(capacity_bytes=64 * 1024 * 1024)
    config = CyrusConfig(key="cache-key", t=2, n=3, **BENCH_CHUNKS)
    client = env.new_client(config, cache=cache)

    data = random_bytes(FILE_BYTES, seed=99)
    client.put("doc.bin", data)
    cold = client.get("doc.bin")
    warm = client.get("doc.bin")

    edited = edited_copy(data, seed=100, edits=3, max_edit=32 * 1024)
    client.put("doc.bin", edited)
    incremental = client.get("doc.bin")
    assert incremental.data == edited

    return {
        "cold": (cold.duration, cold.bytes_downloaded),
        "warm": (warm.duration, warm.bytes_downloaded),
        "edited": (incremental.duration, incremental.bytes_downloaded),
        "hits": cache.hits,
        "misses": cache.misses,
    }


def test_ablation_chunk_cache(benchmark):
    stats = benchmark.pedantic(run_cache_experiment, rounds=1, iterations=1)
    rows = [
        [label, fmt_seconds(duration), f"{downloaded:,}"]
        for label, (duration, downloaded) in (
            ("cold read", stats["cold"]),
            ("warm repeat read", stats["warm"]),
            ("read of edited version", stats["edited"]),
        )
    ]
    print_table(
        f"Ablation: chunk cache ({FILE_BYTES // 2**20} MB file, "
        f"cache hits {stats['hits']}, misses {stats['misses']})",
        render_table(["read", "completion time", "bytes downloaded"], rows),
    )
    cold_t, cold_b = stats["cold"]
    warm_t, warm_b = stats["warm"]
    edit_t, edit_b = stats["edited"]
    # a warm read moves no bytes and takes (almost) no time
    assert warm_b == 0
    assert warm_t < cold_t / 10
    # reading the edited version downloads only the changed chunks
    assert 0 < edit_b < cold_b / 2
    assert edit_t < cold_t
    benchmark.extra_info["cold_s"] = round(cold_t, 4)
    benchmark.extra_info["warm_s"] = round(warm_t, 6)
    benchmark.extra_info["edited_s"] = round(edit_t, 4)
