"""Figure 16 — completion times of different storage schemes.

A single (scaled) 40 MB file moved through CYRUS, DepSky, full
replication and full striping over four CSPs with Table 2's real-world
rates, averaged over several placements.  Paper shapes asserted:

* upload: striping < CYRUS < DepSky (lock round-trips + backoff + the
  cancelled extra share) and CYRUS < replication;
* download: CYRUS at worst marginally behind DepSky (both fetch t = 2
  shares; DepSky's greedy picks coincide with the optimum on a single
  unchunked file, paper footnote 13) and clearly ahead of striping and
  replication-averaged;
* replication's best single CSP beats its average; its worst is far
  slower.

One paper claim is *not* asserted: "DepSky's upload time is ... longer
than Full Replication's".  Replication pushes a full copy to every CSP
(2x DepSky's per-CSP bytes), so on any volume-faithful substrate DepSky
finishes first; the paper's inversion reflects costs internal to their
DepSky port that its published protocol does not imply.  See
EXPERIMENTS.md.
"""

import statistics

from repro.baselines import FullReplicationClient, FullStripingClient
from repro.bench import build_environment
from repro.bench.reporting import fmt_seconds, render_table
from repro.core.config import CyrusConfig
from repro.depsky import DepSkyClient
from repro.workloads import random_bytes
from repro.workloads.trial import TRIAL_CSPS, trial_environment

from benchmarks.conftest import print_table

#: The paper's 40 MB file, scaled like the dataset benchmarks.
FILE_BYTES = 4 * 1024 * 1024

#: Placement/backoff luck is averaged over this many independent files.
TRIALS = 3


def build_env():
    from repro.bench.realworld import realworld_links

    return build_environment(
        realworld_links(),
        client_up=100e6 / 8,
        client_down=100e6 / 8,
    )


def run_schemes():
    ups: dict[str, list[float]] = {}
    downs: dict[str, list[float]] = {}
    repl_per_csp: dict[str, float] = {}

    def record(scheme, up, down):
        ups.setdefault(scheme, []).append(up)
        downs.setdefault(scheme, []).append(down)

    for trial in range(TRIALS):
        data = random_bytes(FILE_BYTES, seed=160 + trial)
        fname = f"file40-{trial}"

        # CYRUS: (2,3), unchunked (paper footnote 13), optimised selection
        env = build_env()
        cyrus_cfg = CyrusConfig(
            key="k", t=2, n=3,
            chunk_min=FILE_BYTES, chunk_avg=1 << 23, chunk_max=1 << 23,
        )
        client = env.new_client(cyrus_cfg)
        up = client.put(fname, data)
        down = client.get(fname)
        assert down.data == data
        record("CYRUS", up.duration, down.duration)

        # DepSky: locks + backoff + scatter-all-cancel + greedy reads
        env = build_env()
        depsky = DepSkyClient(env.engine, list(TRIAL_CSPS), key="k", t=2,
                              n=3, backoff_range=(0.5, 1.0), seed=trial)
        up = depsky.upload(fname, data)
        down = depsky.download(fname)
        assert down.data == data
        record("DepSky", up.duration, down.duration)

        # Full replication: a copy everywhere; download averaged per CSP
        env = build_env()
        repl = FullReplicationClient(env.engine, list(TRIAL_CSPS))
        up = repl.upload(fname, data)
        per_csp = {
            csp: repl.download(fname, csp, FILE_BYTES).duration
            for csp in TRIAL_CSPS
        }
        repl_per_csp = per_csp
        record("Full Replication", up.duration,
               statistics.fmean(per_csp.values()))

        # Full striping: one plaintext fragment per CSP
        env = build_env()
        stripe = FullStripingClient(env.engine, list(TRIAL_CSPS))
        up = stripe.upload(fname, data)
        down = stripe.download(fname, FILE_BYTES)
        assert down.data == data
        record("Full Striping", up.duration, down.duration)

    means = {
        scheme: (statistics.fmean(ups[scheme]), statistics.fmean(downs[scheme]))
        for scheme in ups
    }
    return means, repl_per_csp


def test_figure16_scheme_comparison(benchmark):
    results, repl_per_csp = benchmark.pedantic(run_schemes, rounds=1,
                                               iterations=1)
    rows = [
        [scheme, fmt_seconds(up), fmt_seconds(down)]
        for scheme, (up, down) in results.items()
    ]
    print_table(
        f"Figure 16: completion times, {FILE_BYTES // 2**20} MB file "
        f"(paper used 40 MB), mean of {TRIALS} placements",
        render_table(["Scheme", "Upload", "Download"], rows),
    )
    best = min(repl_per_csp.values())
    worst = max(repl_per_csp.values())
    print(f"replication single-CSP download: best {fmt_seconds(best)}, "
          f"worst {fmt_seconds(worst)}")

    up = {k: v[0] for k, v in results.items()}
    down = {k: v[1] for k, v in results.items()}

    # upload ordering
    assert up["Full Striping"] < up["CYRUS"]
    assert up["CYRUS"] < up["Full Replication"]
    assert up["CYRUS"] < up["DepSky"]  # locks + backoff + extra share

    # download ordering
    assert down["CYRUS"] < down["Full Striping"]
    assert down["CYRUS"] <= down["DepSky"] * 1.10
    assert down["DepSky"] < down["Full Replication"]
    assert down["Full Striping"] < down["Full Replication"]
    # replication's spread: best CSP much faster than its average
    assert best < down["Full Replication"] < worst

    for scheme, (u, d) in results.items():
        benchmark.extra_info[f"{scheme} up"] = round(u, 3)
        benchmark.extra_info[f"{scheme} down"] = round(d, 3)
