"""Shared configuration for the table/figure benchmarks.

Every benchmark regenerates one of the paper's tables or figures on the
simulated substrate and asserts the paper's *qualitative shape* (who
wins, by roughly what factor, where crossovers fall) — not absolute
numbers, which depended on the authors' testbed.

Workload sizes are scaled so the whole suite runs in a few minutes; set
``CYRUS_BENCH_SCALE`` (fraction of the paper's 638 MB dataset, default
0.02) to change fidelity.  Simulated completion times are attached to
each benchmark's ``extra_info`` and printed as paper-style tables.
"""

from __future__ import annotations

import os

import pytest

#: Fraction of Table 4's 638 MB used by dataset-driven benchmarks.
BENCH_SCALE = float(os.environ.get("CYRUS_BENCH_SCALE", "0.02"))

#: Chunking parameters scaled from the paper's 4 MB-average chunks.
BENCH_CHUNKS = dict(
    chunk_min=32 * 1024, chunk_avg=128 * 1024, chunk_max=1024 * 1024
)


@pytest.fixture
def bench_scale() -> float:
    return BENCH_SCALE


def print_table(title: str, rendered: str) -> None:
    """Print a paper-style table under a clear banner."""
    bar = "=" * max(len(title), 20)
    print(f"\n{bar}\n{title}\n{bar}\n{rendered}")
