"""Figure 13 — simulated cumulative CSP failures.

The paper's own experiment is a simulation over real monitoring data:
four commercial CSPs with 1.37-18.53 hours/year of downtime, 10^7
request trials.  At that scale "even the most reliable CSP returned
approximately 1,500 failed requests, while CYRUS showed only 44
failures with (t,n) = (3,4) and no failures with (2,4)".  We run the
same Monte Carlo (trial count scaled via extrapolation-friendly seeds)
and assert those orderings.
"""

import os

from repro.bench.reporting import render_table
from repro.reliability import downtime_to_probability, simulate_request_failures

from benchmarks.conftest import print_table

#: Annual downtime hours: endpoints are the paper's; middles interpolated.
CSP_DOWNTIME = {
    "CSP-A": 1.37,
    "CSP-B": 6.0,
    "CSP-C": 12.0,
    "CSP-D": 18.53,
}

#: Paper uses 1e7; scale down by default, override via env.
TRIALS = int(os.environ.get("CYRUS_BENCH_F13_TRIALS", "2000000"))


def run_figure13():
    return simulate_request_failures(
        CSP_DOWNTIME, configs=[(3, 4), (2, 4)], trials=TRIALS, seed=13
    )


def test_figure13_cumulative_failures(benchmark):
    results = benchmark.pedantic(run_figure13, rounds=1, iterations=1)
    finals = {name: int(series[-1]) for name, series in results.items()}
    scale = TRIALS / 1e7
    rows = [
        [name, finals[name], f"{finals[name] / scale:.0f}"]
        for name in finals
    ]
    print_table(
        f"Figure 13: cumulative failed requests after {TRIALS:,} trials",
        render_table(["Series", "failures", "extrapolated to 1e7"], rows),
    )

    best_single = min(finals[c] for c in CSP_DOWNTIME)
    worst_single = max(finals[c] for c in CSP_DOWNTIME)

    # paper shapes:
    # 1. most reliable single CSP ~1500 failures at 1e7 (per-trial rate
    #    equals its downtime probability)
    expected_best = downtime_to_probability(1.37) * TRIALS
    assert finals["CSP-A"] == best_single
    assert abs(best_single - expected_best) < 6 * expected_best ** 0.5 + 10
    # 2. CYRUS (3,4) beats every single CSP by orders of magnitude
    assert finals["CYRUS (3,4)"] < best_single / 10
    # 3. CYRUS (2,4) is (near-)zero — strictly below (3,4)
    assert finals["CYRUS (2,4)"] <= finals["CYRUS (3,4)"]
    assert finals["CYRUS (2,4)"] <= 2
    # 4. failure count is monotone in downtime across single CSPs
    ordered = sorted(CSP_DOWNTIME, key=CSP_DOWNTIME.get)
    counts = [finals[c] for c in ordered]
    assert counts == sorted(counts)

    for name, value in finals.items():
        benchmark.extra_info[name] = value


def test_figure13_analytic_agreement(benchmark):
    """Monte Carlo rates must match Eq. (1)'s closed form."""
    from repro.reliability import chunk_failure_probability

    results = benchmark.pedantic(run_figure13, rounds=1, iterations=1)
    probs = [downtime_to_probability(h) for h in CSP_DOWNTIME.values()]
    p_worst = max(probs)
    # conservative bound (footnote 6): analytic rate with p = worst CSP
    bound_34 = chunk_failure_probability(3, 4, p_worst) * TRIALS
    assert int(results["CYRUS (3,4)"][-1]) <= bound_34 * 2 + 10
