"""Figure 19 — deployment-trial completion times, US vs Korea.

A (scaled) 20 MB test file is uploaded/downloaded through CYRUS with
(t, n) = (2,3) and (2,4), and through each single CSP, in both country
environments.  Timings are averaged over several placements.  Paper
shapes asserted:

* US uploads: (2,4) (2x the data through the residential uplink) is
  slower than every single CSP; (2,3) beats all but the fastest CSP;
* Korea uploads: both configurations beat every single CSP;
* downloads: CYRUS beats every single CSP except (at most) the fastest,
  in both countries;
* the (2,4)-vs-(2,3) deltas: the upload penalty is much larger in the
  US than Korea; the download saving is much larger in Korea.
"""

import statistics

from repro.baselines import FullReplicationClient
from repro.bench import build_environment
from repro.bench.reporting import fmt_seconds, render_table
from repro.core.config import CyrusConfig
from repro.workloads import random_bytes
from repro.workloads.trial import TRIAL_CSPS, trial_environment

from benchmarks.conftest import print_table

#: The paper's 20 MB test file, scaled.
FILE_BYTES = 2 * 1024 * 1024
TRIALS = 4


def build_env(country):
    profile = trial_environment(country)
    return build_environment(
        profile.links(),
        client_up=profile.client_up,
        client_down=profile.client_down,
    )


def run_country(country):
    """Mean upload/download times: CYRUS configs + each single CSP."""
    up: dict[str, list[float]] = {}
    down: dict[str, list[float]] = {}

    for trial in range(TRIALS):
        data = random_bytes(FILE_BYTES, seed=190 + trial)
        fname = f"trial-{trial}"
        for t, n in [(2, 3), (2, 4)]:
            env = build_env(country)
            config = CyrusConfig(
                key=f"k{trial}", t=t, n=n,
                chunk_min=FILE_BYTES, chunk_avg=1 << 22, chunk_max=1 << 22,
            )
            client = env.new_client(config)
            label = f"CYRUS ({t},{n})"
            report = client.put(fname, data, sync_first=False)
            up.setdefault(label, []).append(report.duration)
            got = client.get(fname, sync_first=False)
            assert got.data == data
            down.setdefault(label, []).append(got.duration)

        # single-CSP transfers: one full copy to/from one provider
        env = build_env(country)
        for csp in TRIAL_CSPS:
            single = FullReplicationClient(env.engine, [csp])
            report = single.upload(f"{fname}-{csp}", data)
            up.setdefault(csp, []).append(report.duration)
            got = single.download(f"{fname}-{csp}", csp, FILE_BYTES)
            down.setdefault(csp, []).append(got.duration)

    return (
        {k: statistics.fmean(v) for k, v in up.items()},
        {k: statistics.fmean(v) for k, v in down.items()},
    )


def test_figure19_trial(benchmark):
    def run_both():
        return {country: run_country(country) for country in ("US", "Korea")}

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)

    for country in ("US", "Korea"):
        up, down = results[country]
        rows = [
            [label, fmt_seconds(up[label]), fmt_seconds(down[label])]
            for label in up
        ]
        print_table(
            f"Figure 19 ({country}): {FILE_BYTES // 2**20} MB file "
            f"(paper used 20 MB)",
            render_table(["Series", "Upload", "Download"], rows),
        )

    us_up, us_down = results["US"]
    kr_up, kr_down = results["Korea"]
    singles = list(TRIAL_CSPS)

    # --- US uploads: client uplink is the bottleneck -------------------
    best_single_up = min(us_up[c] for c in singles)
    worst_single_up = max(us_up[c] for c in singles)
    assert us_up["CYRUS (2,4)"] > worst_single_up  # slower than all
    assert us_up["CYRUS (2,3)"] < sorted(us_up[c] for c in singles)[1]
    assert us_up["CYRUS (2,3)"] > best_single_up  # "all but one CSP"

    # --- Korea uploads: both configs beat every single CSP -------------
    kr_best_single_up = min(kr_up[c] for c in singles)
    assert kr_up["CYRUS (2,3)"] < kr_best_single_up
    assert kr_up["CYRUS (2,4)"] < kr_best_single_up

    # --- downloads: beat all but (at most) the fastest single CSP ------
    for country, down in (("US", us_down), ("Korea", kr_down)):
        second_single = sorted(down[c] for c in singles)[1]
        for cfg in ("CYRUS (2,3)", "CYRUS (2,4)"):
            assert down[cfg] < second_single, (country, cfg)

    # --- the (2,4) deltas ------------------------------------------------
    us_upload_penalty = us_up["CYRUS (2,4)"] - us_up["CYRUS (2,3)"]
    kr_upload_penalty = kr_up["CYRUS (2,4)"] - kr_up["CYRUS (2,3)"]
    us_download_saving = us_down["CYRUS (2,3)"] - us_down["CYRUS (2,4)"]
    kr_download_saving = kr_down["CYRUS (2,3)"] - kr_down["CYRUS (2,4)"]
    print(
        f"\n(2,4) vs (2,3): US upload penalty {fmt_seconds(us_upload_penalty)}"
        f" (paper: 7.78 s at 20 MB), Korea download saving "
        f"{fmt_seconds(kr_download_saving)} (paper: 33.8 s at 20 MB)"
    )
    # upload penalty dominated by the US uplink bottleneck
    assert us_upload_penalty > 3 * max(kr_upload_penalty, 0.01)
    # download saving dominated by Korea's skewed downlinks
    assert kr_download_saving > 3 * max(us_download_saving, 0.01)
    assert kr_download_saving > 0.2 * kr_down["CYRUS (2,3)"]

    for country in ("US", "Korea"):
        up, down = results[country]
        for label, value in up.items():
            benchmark.extra_info[f"{country} up {label}"] = round(value, 3)
