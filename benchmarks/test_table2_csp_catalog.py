"""Table 2 — commercial CSP APIs and measured performance.

Regenerates the throughput column from the RTT column with the paper's
TCP model (0.1 % loss, 65,535-byte window) and checks every row against
the published value.
"""

import pytest

from repro.bench.reporting import render_table
from repro.csp.catalog import TABLE2, TABLE2_THROUGHPUT_MBPS

from benchmarks.conftest import print_table


def compute_rows():
    return [
        (
            spec.name,
            spec.format,
            spec.protocol,
            spec.auth,
            spec.rtt_ms,
            round(spec.throughput_mbps, 3),
        )
        for spec in TABLE2
    ]


def test_table2_regeneration(benchmark):
    rows = benchmark(compute_rows)
    print_table(
        "Table 2: CSP catalog (throughput derived from RTT)",
        render_table(
            ["CSP", "Format", "Protocol", "Authentication", "RTT (ms)",
             "Throughput (Mbps)"],
            [list(r) for r in rows],
        ),
    )
    for name, _, _, _, _, mbps in rows:
        assert mbps == pytest.approx(TABLE2_THROUGHPUT_MBPS[name], abs=0.02), name
    benchmark.extra_info["rows_matched"] = len(rows)


def test_table2_amazon_platforms_flagged(benchmark):
    starred = benchmark(
        lambda: sorted(s.name for s in TABLE2 if s.amazon_platform)
    )
    assert starred == [
        "Amazon S3", "Bitcasa", "CloudApp", "DigitalBucket", "Safe Creative",
    ]
