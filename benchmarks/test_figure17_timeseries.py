"""Figure 17 — hourly 1 MB completion times over two days, CYRUS vs DepSky.

The paper's box plots show CYRUS significantly faster on both paths,
"DepSky's upload times ... at nearly twice those of CYRUS" — the lock
round-trips and random backoff are pure overhead on a 1 MB transfer.
"""

import statistics

from repro.bench.reporting import fmt_seconds, render_table

from benchmarks._realworld_common import HOURS, run_two_days
from benchmarks.conftest import print_table


def quartiles(samples):
    ordered = sorted(samples)
    q = statistics.quantiles(ordered, n=4)
    return ordered[0], q[0], q[1], q[2], ordered[-1]


def test_figure17_boxplots(benchmark):
    run = benchmark.pedantic(run_two_days, rounds=1, iterations=1)
    assert len(run.cyrus_up) == HOURS

    rows = []
    for label, samples in (
        ("CYRUS upload", run.cyrus_up),
        ("DepSky upload", run.depsky_up),
        ("CYRUS download", run.cyrus_down),
        ("DepSky download", run.depsky_down),
    ):
        lo, q1, med, q3, hi = quartiles(samples)
        rows.append([label] + [fmt_seconds(v) for v in (lo, q1, med, q3, hi)])
    print_table(
        "Figure 17: 1 MB hourly completion times over 2 days (box stats)",
        render_table(["Series", "min", "Q1", "median", "Q3", "max"], rows),
    )

    med_cyrus_up = statistics.median(run.cyrus_up)
    med_depsky_up = statistics.median(run.depsky_up)
    med_cyrus_down = statistics.median(run.cyrus_down)
    med_depsky_down = statistics.median(run.depsky_down)

    # CYRUS faster on both directions, every summary statistic
    assert med_cyrus_up < med_depsky_up
    assert med_cyrus_down < med_depsky_down
    assert max(run.cyrus_up) < max(run.depsky_up) * 1.2
    # "DepSky's upload times are particularly large at nearly twice
    # those of CYRUS" — require a substantial gap, not a hair
    assert med_depsky_up > 1.3 * med_cyrus_up

    benchmark.extra_info["median_cyrus_up"] = round(med_cyrus_up, 3)
    benchmark.extra_info["median_depsky_up"] = round(med_depsky_up, 3)
    benchmark.extra_info["median_cyrus_down"] = round(med_cyrus_down, 3)
    benchmark.extra_info["median_depsky_down"] = round(med_depsky_down, 3)


def test_figure17_diurnal_variation_visible(benchmark):
    """The hourly samples must actually vary with the diurnal swing."""
    run = benchmark.pedantic(run_two_days, rounds=1, iterations=1)
    spread = max(run.cyrus_up) / min(run.cyrus_up)
    assert spread > 1.15, "rate traces had no visible effect"
