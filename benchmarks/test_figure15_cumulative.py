"""Figure 15 — cumulative testbed completion times by (t, n).

Uploads and downloads the (scaled) Table 4 dataset with CYRUS's
selector under the three configurations and reports the cumulative
completion-time curves.  Paper shapes asserted:

* uploads: (3,4) shortest (moves n/t = 1.33x the data), (2,3) next
  (1.5x), (2,4) longest (2x, and the extra share must reach the slow
  clouds);
* downloads: (3,4) at or below (2,3) (same data moved, smaller shares).
"""

from repro.bench.reporting import fmt_seconds, render_table
from repro.selection import CyrusSelector

from benchmarks._testbed_common import dataset_files, run_experiment
from benchmarks.conftest import print_table

CONFIGS = [(2, 3), (2, 4), (3, 4)]


def run_all(files):
    return {
        (t, n): run_experiment(
            t, n, lambda: CyrusSelector(resolve_every=4), "CYRUS", files
        )
        for t, n in CONFIGS
    }


def test_figure15_cumulative_times(benchmark):
    files = dataset_files(max_files=100)
    results = benchmark.pedantic(lambda: run_all(files), rounds=1,
                                 iterations=1)

    rows = [
        [
            f"({t},{n})",
            fmt_seconds(results[(t, n)].cumulative_upload),
            fmt_seconds(results[(t, n)].cumulative_download),
        ]
        for t, n in CONFIGS
    ]
    print_table(
        "Figure 15: cumulative completion times (all files)",
        render_table(["(t,n)", "cumulative upload", "cumulative download"],
                     rows),
    )

    up = {cfg: results[cfg].cumulative_upload for cfg in CONFIGS}
    down = {cfg: results[cfg].cumulative_download for cfg in CONFIGS}

    # uploads: (3,4) < (2,3) < (2,4) — the data-volume ordering
    assert up[(3, 4)] < up[(2, 3)] < up[(2, 4)]
    # downloads: (3,4) no worse than (2,3) (same volume, smaller shares)
    assert down[(3, 4)] <= down[(2, 3)] * 1.10

    # the per-curve shape: cumulative time grows monotonically file by
    # file (sanity of the time accounting)
    for cfg in CONFIGS:
        running = 0.0
        for duration in results[cfg].upload_durations:
            assert duration >= 0
            running += duration
        assert running == results[cfg].cumulative_upload

    for cfg in CONFIGS:
        benchmark.extra_info[f"upload{cfg}"] = round(up[cfg], 3)
        benchmark.extra_info[f"download{cfg}"] = round(down[cfg], 3)
