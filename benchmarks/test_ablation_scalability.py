"""Ablation — selection-solver scalability with batch size R.

Section 4.3 motivates the heuristic by noting the exact search space is
C(t, n)^R; the LP-relaxation + per-chunk rounding must stay tractable
as R grows.  This benchmark measures solver wall time and plan quality
across batch sizes and asserts sub-quadratic scaling for the amortised
schedule, plus near-constant quality relative to the fractional lower
bound.
"""

import random
import time

from repro.bench.reporting import render_table
from repro.selection import ChunkDownload, CyrusSelector, DownloadProblem
from repro.selection.relaxation import solve_fractional_alternating

from benchmarks.conftest import print_table

CAPS = {f"fast{i}": 15e6 for i in range(4)} | {f"slow{i}": 2e6 for i in range(3)}


def make_problem(chunks, seed=0):
    rng = random.Random(seed)
    ids = sorted(CAPS)
    return DownloadProblem(
        chunks=tuple(
            ChunkDownload(f"c{i}", rng.randint(1, 8) * 250_000,
                          tuple(rng.sample(ids, 4)))
            for i in range(chunks)
        ),
        t=2, link_caps=CAPS, client_cap=40e6,
    )


def test_ablation_solver_scalability(benchmark):
    sizes = [10, 40, 160]
    rows = []
    times = {}
    gaps = {}
    for size in sizes:
        problem = make_problem(size, seed=size)
        selector = CyrusSelector(resolve_every=max(1, size // 8))
        start = time.perf_counter()
        plan = selector.select(problem)
        elapsed = time.perf_counter() - start
        lower = solve_fractional_alternating(problem).y
        times[size] = elapsed
        gaps[size] = plan.bottleneck_time / max(lower, 1e-12)
        rows.append(
            [size, f"{elapsed * 1000:.0f}ms", f"{plan.bottleneck_time:.3f}",
             f"{gaps[size]:.3f}x"]
        )
    benchmark.pedantic(
        lambda: CyrusSelector(resolve_every=8).select(make_problem(40)),
        rounds=1, iterations=1,
    )
    print_table(
        "Ablation: solver scalability (amortised schedule)",
        render_table(
            ["R (chunks)", "wall time", "bottleneck y", "vs fractional LB"],
            rows,
        ),
    )
    # quality: within 25% of the fractional lower bound at every size
    for size in sizes:
        assert gaps[size] <= 1.25, (size, gaps[size])
    # scaling: 16x more chunks must cost well under 16^2 = 256x the time
    ratio = times[160] / max(times[10], 1e-4)
    assert ratio < 120, f"solver scaled superquadratically: {ratio:.0f}x"
