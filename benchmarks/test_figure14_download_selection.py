"""Figure 14 — testbed download performance by CSP-selection algorithm.

(a) mean download completion time for (t, n) in {(2,3), (2,4), (3,4)}
    under random, round-robin ("heuristic") and CYRUS selection;
(b) the distribution of per-file throughputs for (2, 3).

Paper shapes asserted: CYRUS's algorithm is fastest for every
configuration; random is slowest; CYRUS's throughput distribution is
right-shifted; and (3, 4) helps CYRUS (smaller shares) far more than it
helps random/round-robin (which then hit slow clouds more often).
"""

import statistics

from repro.bench.reporting import fmt_seconds, render_table
from repro.selection import CyrusSelector, RandomSelector, RoundRobinSelector

from benchmarks._testbed_common import dataset_files, run_experiment
from benchmarks.conftest import print_table

CONFIGS = [(2, 3), (2, 4), (3, 4)]
SELECTORS = [
    ("random", lambda: RandomSelector(seed=7)),
    ("heuristic", lambda: RoundRobinSelector()),
    ("CYRUS", lambda: CyrusSelector(resolve_every=4)),
]


def run_all(files):
    results = {}
    for t, n in CONFIGS:
        for name, factory in SELECTORS:
            results[(t, n, name)] = run_experiment(t, n, factory, name, files)
    return results


def test_figure14_selection_comparison(benchmark):
    files = dataset_files(max_files=80)
    results = benchmark.pedantic(lambda: run_all(files), rounds=1,
                                 iterations=1)

    rows = []
    for t, n in CONFIGS:
        row = [f"({t},{n})"]
        for name, _ in SELECTORS:
            row.append(fmt_seconds(results[(t, n, name)].mean_download))
        rows.append(row)
    print_table(
        "Figure 14a: mean download completion time by selector",
        render_table(["(t,n)", "random", "heuristic", "CYRUS"], rows),
    )

    # (a) CYRUS strictly fastest, random slowest, for every config
    for t, n in CONFIGS:
        cyrus = results[(t, n, "CYRUS")].mean_download
        heuristic = results[(t, n, "heuristic")].mean_download
        rand = results[(t, n, "random")].mean_download
        assert cyrus <= heuristic + 1e-9, (t, n)
        assert cyrus < rand, (t, n)
        assert heuristic <= rand * 1.1, (t, n)

    # (a) the share-size effect: CYRUS's (3,4) beats (2,3) — smaller
    # shares download faster at the same privacy-forced slow-cloud
    # exposure.  (The paper also shows (3,4) beating (2,4); under
    # uniform consistent-hash placement that cannot hold in expectation
    # — n=4 gives the selector two fast choices 89% of the time while
    # t=3 forces a slow cloud 63% of the time — so we report but do not
    # assert that comparison; see EXPERIMENTS.md.)
    cyrus_times = {
        (t, n): results[(t, n, "CYRUS")].mean_download for t, n in CONFIGS
    }
    assert cyrus_times[(3, 4)] < cyrus_times[(2, 3)]
    # ... while random gains much less from (3,4) than CYRUS does
    random_ratio = (
        results[(2, 3, "random")].mean_download
        / results[(3, 4, "random")].mean_download
    )
    cyrus_ratio = cyrus_times[(2, 3)] / cyrus_times[(3, 4)]
    assert cyrus_ratio > random_ratio * 0.9

    # (b) throughput distribution for (2,3): CYRUS right-shifted.
    # medians can tie exactly (small single-chunk files where several
    # selectors pick the same two fast clouds), so compare means — the
    # CDF shift shows up in the tail where random lands on slow clouds
    tp = {
        name: statistics.fmean(
            results[(2, 3, name)].download_throughputs()
        )
        for name, _ in SELECTORS
    }
    print_table(
        "Figure 14b: mean per-file download throughput, (t,n) = (2,3)",
        render_table(
            ["selector", "mean MB/s"],
            [[k, f"{v / 1e6:.2f}"] for k, v in tp.items()],
        ),
    )
    assert tp["CYRUS"] >= tp["heuristic"]
    assert tp["CYRUS"] > tp["random"]

    for key, result in results.items():
        benchmark.extra_info[str(key)] = round(result.mean_download, 4)
